"""Declarative scenarios: the package's single front door to a simulation.

A :class:`ScenarioSpec` captures one (protocol × durability × workload ×
scale × knobs) evaluation point as a frozen, JSON-round-trippable value.
Everything the repo runs — ``repro.run``, ``repro.bench.runner.run_config``,
the figure orchestrator's cells, ``python -m repro.bench --scenario`` — is
built from one, so there is exactly one code path from "named configuration"
to "running cluster".

Specs validate **eagerly at construction**: protocol/durability/workload
names are checked against the registries (:mod:`repro.registry`) and override
keys against the fields of :class:`~repro.cluster.config.SystemConfig` and
the registered workload's config dataclass.  A typo fails with a did-you-mean
suggestion when the plan is written, not minutes later inside a pool worker.

Example::

    from repro import ScenarioSpec, run, scenarios

    spec = ScenarioSpec(
        protocol="primo",
        workload="ycsb",
        scale="small",
        workload_overrides={"zipf_theta": 0.8},
        config_overrides={"n_partitions": 8},
    )
    result = run(spec)

    # One spec per (protocol, skew) pair, ready for the orchestrator:
    grid = scenarios.sweep(spec, protocol=["primo", "sundial"],
                           zipf_theta=[0.0, 0.4, 0.8])
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from collections.abc import Sequence
from dataclasses import dataclass, fields
from typing import Any, Iterable, Mapping, Optional

from .arrivals import ArrivalSpec
from .cluster.cluster import Cluster
from .cluster.config import SystemConfig
from .cluster.results import RunResult
from .faults import FaultPlan, compile_legacy_faults
from .registry import (
    DURABILITY_REGISTRY,
    PROTOCOL_REGISTRY,
    WORKLOAD_REGISTRY,
    suggestion_hint,
)
from .scales import SCALES, BenchScale, resolve_scale
from .sim.topology import RegionTopology
from .workloads.base import Workload
from .workloads.mixed import normalize_components

__all__ = [
    "ScenarioSpec",
    "SweepGrid",
    "build",
    "build_workload",
    "known_axes",
    "run",
    "sweep",
]

#: SystemConfig fields a spec may override.  ``protocol`` and ``durability``
#: are spec fields in their own right; listing them here would create two ways
#: to say the same thing.
_CONFIG_FIELD_NAMES = tuple(
    f.name for f in fields(SystemConfig) if f.name not in ("protocol", "durability")
)


def _normalize_value(name: str, value: Any) -> Any:
    """Restrict override values to JSON-round-trippable shapes.

    Scalars pass through; lists/tuples become tuples (recursively), so a spec
    rebuilt from its JSON compares equal to the original.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_normalize_value(name, item) for item in value)
    raise TypeError(
        f"override {name!r} has non-JSON-serializable value {value!r} "
        f"({type(value).__name__}); use scalars or lists"
    )


def _freeze_overrides(overrides, *, kind: str, valid: tuple[str, ...]) -> tuple:
    """Normalize overrides into sorted ``(name, value)`` pairs, validating keys."""
    if not overrides:
        return ()
    items = dict(overrides)
    for name in items:
        if name not in valid:
            raise ValueError(
                f"unknown {kind} override {name!r}{suggestion_hint(str(name), valid)}; "
                f"valid keys: {', '.join(valid)}"
            )
    return tuple(
        (name, _normalize_value(name, items[name])) for name in sorted(items)
    )


def _freeze_delay(name: str, value) -> Optional[tuple]:
    if value is None:
        return None
    pair = tuple(value)
    if len(pair) != 2:
        raise ValueError(f"{name} must be a (partition_id, delay_us) pair, got {value!r}")
    return (int(pair[0]), float(pair[1]))


@dataclass(frozen=True)
class ScenarioSpec:
    """One evaluation point, validated at construction and JSON-round-trippable.

    ``durability=None`` means "the protocol's default pairing" (registration
    metadata, §6.1.3).  ``scale`` accepts a preset name (``"small"``,
    ``"tiny"``, …), a :class:`BenchScale`, or its dict form.  ``workload``
    accepts a registered name or a ``{name: weight}`` mapping — sugar for the
    ``"mixed"`` composite workload.  ``faults`` is a declarative
    :class:`~repro.faults.FaultPlan` (or a list of fault-event dicts) applied
    deterministically by the cluster's fault scheduler; the two scalar
    fault knobs below predate it and now compile onto the same path.
    Override mappings are frozen into sorted pairs so equal scenarios hash
    and serialize identically regardless of how they were written.
    """

    protocol: str
    workload: str = "ycsb"
    durability: Optional[str] = None
    scale: BenchScale = SCALES["small"]
    config_overrides: tuple = ()
    workload_overrides: tuple = ()
    #: Declarative fault plan (``None`` = no injection).
    faults: Optional[FaultPlan] = None
    #: Arrival process (:class:`~repro.arrivals.ArrivalSpec`, its kind name,
    #: or its JSON dict form).  ``None`` — and the explicit ``"closed"`` kind,
    #: which normalizes to ``None`` — is the historical closed loop; open
    #: kinds (``poisson``/``deterministic``/``bursty``) turn the run into an
    #: offered-load sweep point.  Omitted from the JSON form when ``None`` so
    #: legacy scenarios keep their orchestrator cache keys.
    arrival: Optional[ArrivalSpec] = None
    #: Geo-aware latency topology (:class:`~repro.sim.topology.RegionTopology`
    #: or its JSON dict form).  ``None`` is the historical flat network; like
    #: ``arrival`` it is omitted from the JSON form when ``None`` so
    #: pre-topology scenarios keep their orchestrator cache keys.
    topology: Optional[RegionTopology] = None
    #: Legacy shim — (partition_id, delay_us); compiles to a zero-time
    #: ``message_delay`` fault event (Fig. 13a's lagging control messages).
    durability_message_delay: Optional[tuple] = None
    #: Legacy shim — (partition_id, extra_delay_us); compiles to a zero-time
    #: ``slow_partition`` fault event (Fig. 13b's slow partition).
    network_extra_delay_to: Optional[tuple] = None

    def __post_init__(self) -> None:
        def set_field(name: str, value) -> None:
            object.__setattr__(self, name, value)

        PROTOCOL_REGISTRY.check(self.protocol)
        workload_overrides = self.workload_overrides
        if isinstance(self.workload, Mapping):
            # {name: weight} sugar for the "mixed" composite workload.
            overrides = dict(workload_overrides or ())
            if "components" in overrides:
                raise ValueError(
                    "workload mix given twice: a {name: weight} workload and "
                    "a 'components' workload override"
                )
            overrides["components"] = [
                [name, weight] for name, weight in self.workload.items()
            ]
            workload_overrides = overrides
            set_field("workload", "mixed")
        workload_entry = WORKLOAD_REGISTRY.entry(self.workload)
        set_field("scale", resolve_scale(self.scale))

        config_overrides = dict(self.config_overrides or ())
        # ``durability`` is a first-class axis; accept it in the override dict
        # (the historical run_config spelling) but store it on the field.
        hoisted = config_overrides.pop("durability", None)
        if hoisted is not None:
            if self.durability is not None and self.durability != hoisted:
                raise ValueError(
                    f"durability given twice: field {self.durability!r} vs "
                    f"config override {hoisted!r}"
                )
            set_field("durability", hoisted)
        if self.durability is not None:
            DURABILITY_REGISTRY.check(self.durability)

        set_field(
            "config_overrides",
            _freeze_overrides(config_overrides, kind="config",
                              valid=_CONFIG_FIELD_NAMES),
        )
        workload_fields = tuple(
            f.name for f in fields(workload_entry.metadata["config_cls"])
        )
        set_field(
            "workload_overrides",
            _freeze_overrides(workload_overrides, kind="workload",
                              valid=workload_fields),
        )
        if self.workload == "mixed":
            # Eager mix validation: component names, weights and per-component
            # knobs fail here — with did-you-mean hints — not inside a pool
            # worker.  The canonical (sorted) component form is stored so
            # equal mixes serialize and draw identically.
            overrides = dict(self.workload_overrides)
            overrides["components"] = normalize_components(
                overrides.get("components", ()))
            set_field(
                "workload_overrides",
                tuple((name, overrides[name]) for name in sorted(overrides)),
            )
        set_field("faults", FaultPlan.coerce(self.faults))
        set_field("arrival", ArrivalSpec.coerce(self.arrival))
        set_field("topology", RegionTopology.coerce(self.topology))
        if self.arrival is not None and self.arrival.component_rates:
            # Validated here rather than in ArrivalSpec because only the
            # scenario sees both the rates and the mix they must name.
            if self.workload != "mixed":
                raise ValueError(
                    "arrival component_rates require the 'mixed' workload; "
                    f"got workload {self.workload!r}"
                )
            components = dict(self.workload_overrides).get("components", ())
            names = tuple(name for name, _, _ in components)
            unknown = [name for name, _ in self.arrival.component_rates
                       if name not in names]
            if unknown:
                raise ValueError(
                    f"arrival component_rates name unknown mix component(s) "
                    f"{', '.join(map(repr, unknown))}"
                    f"{suggestion_hint(unknown[0], names)}; mix components: "
                    f"{', '.join(names)}"
                )
        set_field(
            "durability_message_delay",
            _freeze_delay("durability_message_delay", self.durability_message_delay),
        )
        set_field(
            "network_extra_delay_to",
            _freeze_delay("network_extra_delay_to", self.network_extra_delay_to),
        )

    # -- resolution -------------------------------------------------------------
    @property
    def resolved_durability(self) -> str:
        """The durability scheme that will actually run (§6.1.3 pairing)."""
        if self.durability is not None:
            return self.durability
        entry = PROTOCOL_REGISTRY.entry(self.protocol)
        return entry.metadata.get("default_durability", "coco")

    # -- JSON round trip ---------------------------------------------------------
    def to_json_dict(self) -> dict:
        """A plain-JSON representation; inverse of :meth:`from_json_dict`."""

        def plain(value):
            if isinstance(value, tuple):
                return [plain(item) for item in value]
            return value

        data = {
            "protocol": self.protocol,
            "workload": self.workload,
            "durability": self.durability,
            "scale": dataclasses.asdict(self.scale),
            "config_overrides": {name: plain(v) for name, v in self.config_overrides},
            "workload_overrides": {name: plain(v) for name, v in self.workload_overrides},
            "faults": self.faults.to_json_list() if self.faults is not None else None,
            "durability_message_delay": plain(self.durability_message_delay),
            "network_extra_delay_to": plain(self.network_extra_delay_to),
        }
        if self.arrival is not None:
            # Omitted when None (the closed loop) so pre-arrival scenarios
            # serialize — and cache-key — exactly as they always did.
            data["arrival"] = self.arrival.to_json_dict()
        if self.topology is not None:
            # Same omit-when-None convention as ``arrival``, for the same
            # cache-key stability reason.
            data["topology"] = self.topology.to_json_dict()
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json_dict` output (or a hand-written
        scenario file; ``scale`` may be a preset name)."""
        if not isinstance(data, Mapping):
            raise TypeError(f"scenario must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {', '.join(map(repr, unknown))}"
                f"{suggestion_hint(unknown[0], tuple(known))}"
            )
        kwargs = dict(data)
        if "protocol" not in kwargs:
            raise ValueError("scenario is missing the required 'protocol' field")
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_json_dict(json.loads(text))

    def canonical_json(self) -> str:
        """Minimal, key-sorted JSON — the stable identity cache keys hash."""
        return json.dumps(self.to_json_dict(), sort_keys=True, separators=(",", ":"))

    # -- derivation --------------------------------------------------------------
    def derive(self, **changes) -> "ScenarioSpec":
        """A new validated spec with ``changes`` applied.

        Each keyword is routed by name: spec fields replace, SystemConfig
        fields merge into ``config_overrides``, and fields of the (possibly
        newly chosen) workload's config dataclass merge into
        ``workload_overrides``.  Anything else raises with a suggestion.
        """
        spec_fields = {f.name for f in fields(self)}
        replacements = {k: v for k, v in changes.items() if k in spec_fields}
        remainder = {k: v for k, v in changes.items() if k not in spec_fields}

        workload = replacements.get("workload", self.workload)
        if isinstance(workload, Mapping):
            # A {name: weight} mix axis; validated fully by the new spec.
            workload = "mixed"
        workload_fields = tuple(
            f.name
            for f in fields(WORKLOAD_REGISTRY.entry(workload).metadata["config_cls"])
        )
        config_updates, workload_updates = {}, {}
        for name, value in remainder.items():
            if name in _CONFIG_FIELD_NAMES:
                config_updates[name] = value
            elif name in workload_fields:
                workload_updates[name] = value
            else:
                choices = spec_fields | set(_CONFIG_FIELD_NAMES) | set(workload_fields)
                raise ValueError(
                    f"unknown scenario axis {name!r}"
                    f"{suggestion_hint(name, tuple(sorted(choices)))}; axes are spec "
                    "fields, SystemConfig fields, or workload config fields"
                )
        if config_updates:
            # An explicit config_overrides replacement is the merge base;
            # loose knobs layer on top of it, never over it.
            merged = dict(replacements.get("config_overrides", self.config_overrides))
            merged.update(config_updates)
            replacements["config_overrides"] = merged
        if workload_updates:
            if "workload_overrides" in replacements:
                base = replacements["workload_overrides"]
            elif "workload" in replacements:
                base = ()
            else:
                base = self.workload_overrides
            merged = dict(base)
            merged.update(workload_updates)
            replacements["workload_overrides"] = merged
        elif "workload" in replacements and "workload_overrides" not in replacements:
            # Overrides are validated against the workload's config; they do
            # not silently carry over to a different workload.
            replacements["workload_overrides"] = ()
        return dataclasses.replace(self, **replacements)


def known_axes(base: ScenarioSpec, extra_workloads: Iterable = ()) -> tuple[str, ...]:
    """Every axis name :meth:`ScenarioSpec.derive` would accept for ``base``.

    Spec fields, ``SystemConfig`` fields, and the config fields of the base
    spec's workload plus any ``extra_workloads`` (names or ``{name: weight}``
    mixes — the values a ``workload`` axis might take).  Used for *eager*
    axis-name validation by callers that expand grids lazily (campaign
    manifests): a typo'd factor name fails before the first of a million
    cells is derived, with the same did-you-mean treatment ``derive`` gives.
    """
    workloads = {base.workload}
    for workload in extra_workloads:
        workloads.add("mixed" if isinstance(workload, Mapping) else workload)
    names = {f.name for f in fields(ScenarioSpec)}
    names.update(_CONFIG_FIELD_NAMES)
    for workload in workloads:
        entry = WORKLOAD_REGISTRY.entry(workload)
        names.update(f.name for f in fields(entry.metadata["config_cls"]))
    return tuple(sorted(names))


class SweepGrid(Sequence):
    """The lazy cartesian product a :func:`sweep` call describes.

    Behaves like the list it used to be — ``len``, iteration, indexing and
    slicing all work, ordering is last-axis-fastest — but each
    :class:`ScenarioSpec` is **derived on access**, never stored.  A
    million-cell campaign grid therefore costs a few tuples of axis values,
    and streaming consumers (``for spec in grid``) hold one spec at a time.
    Validation runs where derivation runs: axis *emptiness* fails eagerly at
    construction, a bad axis *value* (e.g. a typo'd protocol) fails when its
    combination is materialized.
    """

    def __init__(self, base: ScenarioSpec, axes: Mapping[str, Iterable]):
        self._base = base
        self._names = tuple(axes)
        self._values = tuple(tuple(axes[name]) for name in self._names)
        for name, values in zip(self._names, self._values):
            if not values:
                raise ValueError(f"sweep axis {name!r} has no values")

    def _derive(self, combo: tuple) -> ScenarioSpec:
        return self._base.derive(**dict(zip(self._names, combo)))

    def __len__(self) -> int:
        length = 1
        for values in self._values:
            length *= len(values)
        return length

    def __iter__(self):
        for combo in itertools.product(*self._values):
            yield self._derive(combo)

    def combinations(self):
        """Lazy ``(assignment_dict, spec)`` pairs in grid order — the factor
        levels each spec was derived from, for consumers (campaign manifests,
        reports) that group results by level."""
        for combo in itertools.product(*self._values):
            yield dict(zip(self._names, combo)), self._derive(combo)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"sweep index {index} out of range for {length} specs")
        combo = []
        for values in reversed(self._values):
            index, digit = divmod(index, len(values))
            combo.append(values[digit])
        return self._derive(tuple(reversed(combo)))

    def __repr__(self) -> str:
        axes = ", ".join(
            f"{name}[{len(values)}]"
            for name, values in zip(self._names, self._values)
        )
        return f"SweepGrid({len(self)} specs: {axes})"


def sweep(base: ScenarioSpec, **axes: Iterable) -> SweepGrid:
    """The cartesian product of ``base`` varied over ``axes``.

    Each axis is routed exactly like :meth:`ScenarioSpec.derive` keywords::

        sweep(base, protocol=["primo", "sundial"], zipf_theta=[0.0, 0.6, 0.9])

    returns a 6-spec grid, protocol-major (last axis fastest).  Fault plans,
    workload mixes and arrival processes are ordinary axes::

        sweep(base,
              faults=[None, [{"kind": "crash", "at_us": 40_000, "target": 1}]],
              workload=[{"ycsb": 1.0}, {"ycsb": 0.7, "tatp": 0.3}])
        sweep(base, arrival=[{"kind": "poisson", "rate_tps": r}
                             for r in (100_000, 150_000, 200_000)])

    The returned :class:`SweepGrid` is a lazy sequence: specs are derived on
    iteration/indexing, so grids far larger than memory (campaign manifests)
    can be compiled streaming.  Wrap it in ``list(...)`` to materialize —
    and to force validation of every axis value — up front.
    """
    return SweepGrid(base, axes)


# ---------------------------------------------------------------------------
# Building and running
# ---------------------------------------------------------------------------

def build_workload(scale, workload: str = "ycsb", **overrides) -> Workload:
    """Construct a registered workload with the scale's sizing defaults applied.

    A registration may map a config field to the sentinel scale attribute
    ``"__scale__"`` to receive the whole resolved scale (in dict form) —
    composite workloads use it to size their components.
    """
    scale = resolve_scale(scale)
    entry = WORKLOAD_REGISTRY.entry(workload)
    params = {
        config_field: (dataclasses.asdict(scale) if scale_attr == "__scale__"
                       else getattr(scale, scale_attr))
        for config_field, scale_attr in entry.metadata["scale_defaults"].items()
    }
    params.update(overrides)
    config_cls = entry.metadata["config_cls"]
    return entry.obj(config_cls(**params))


def build(spec: ScenarioSpec) -> Cluster:
    """Build (but do not run) the cluster for one scenario.

    The single assembly path shared by ``repro.run``, ``run_config`` and the
    orchestrator's cell executor: scale presets fill any config knob the spec
    does not override, the protocol's default durability pairing applies
    unless the spec names a scheme, and the fault plan — including the
    legacy scalar knobs, which compile to zero-time fault events — is handed
    to the cluster's deterministic fault scheduler.
    """
    scale = spec.scale
    overrides = dict(spec.config_overrides)
    overrides.setdefault("duration_us", scale.duration_us)
    overrides.setdefault("warmup_us", scale.warmup_us)
    overrides.setdefault("workers_per_partition", scale.workers_per_partition)
    overrides.setdefault("inflight_per_worker", scale.inflight_per_worker)
    if spec.durability is not None:
        overrides["durability"] = spec.durability
    config = SystemConfig.for_protocol(spec.protocol, **overrides)
    workload = build_workload(scale, spec.workload, **dict(spec.workload_overrides))
    shimmed = compile_legacy_faults(
        durability_message_delay=spec.durability_message_delay,
        network_extra_delay_to=spec.network_extra_delay_to,
    )
    plan = spec.faults if spec.faults is not None else FaultPlan()
    if shimmed:
        # Legacy knobs apply before the plan's own zero-time events, matching
        # the pre-plan application point (right after cluster construction).
        plan = FaultPlan(events=tuple(shimmed)).extend(plan.events)
    return Cluster(config, workload, faults=plan, arrival=spec.arrival,
                   topology=spec.topology)


def run(spec: ScenarioSpec) -> RunResult:
    """Run one scenario to completion and return its measured results."""
    return build(spec).run()
