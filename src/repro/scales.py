"""Run-size presets shared by the scenario layer and the benchmark harness.

A :class:`BenchScale` bundles everything that makes a run bigger or smaller
without changing its semantics: simulated duration, per-partition concurrency,
and the population sizing of every registered workload.  The presets are
**registered** (:data:`repro.registry.SCALE_REGISTRY`): the built-in four
(``tiny``/``small``/``medium``/``paper``) self-register below, and extensions
add their own from one file with :func:`repro.registry.register_scale` — the
new name is immediately accepted by ``ScenarioSpec.scale``, ``--scale`` and
``--list scales``.  :data:`SCALES` is a live mapping view of the registry.

This lives outside ``repro.bench`` so ``repro.scenario`` (which every bench
entry point is built on) can import it without a cycle; ``repro.bench.runner``
re-exports the same names for existing call sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from .registry import SCALE_REGISTRY, register_scale

__all__ = ["BenchScale", "SCALES", "TINY_SCALE", "resolve_scale", "sweep_values"]


@dataclass(frozen=True)
class BenchScale:
    """Run-size preset used by the experiment functions."""

    name: str
    duration_us: float
    warmup_us: float
    workers_per_partition: int
    inflight_per_worker: int
    ycsb_keys_per_partition: int
    tpcc_warehouses_per_partition: int
    tpcc_items: int
    tpcc_customers_per_district: int
    sweep_points: int  # how many points of each sweep to keep
    # Extension-workload populations (see each workload's ``scale_defaults``
    # registration).  Defaulted so pre-existing BenchScale(...) call sites
    # keep constructing.
    tatp_subscribers_per_partition: int = 20_000
    smallbank_accounts_per_partition: int = 20_000


#: Live name -> BenchScale view of the scale registry.  Keeps every
#: historical call site working (``SCALES["small"]``, ``sorted(SCALES)``,
#: ``SCALES.values()``) while tracking externally registered presets.
SCALES = SCALE_REGISTRY.as_mapping()

_PRESETS = {
    "small": BenchScale(
        name="small",
        duration_us=20_000.0,
        warmup_us=5_000.0,
        workers_per_partition=2,
        inflight_per_worker=2,
        ycsb_keys_per_partition=10_000,
        tpcc_warehouses_per_partition=4,
        tpcc_items=200,
        tpcc_customers_per_district=30,
        sweep_points=3,
        tatp_subscribers_per_partition=5_000,
        smallbank_accounts_per_partition=5_000,
    ),
    "medium": BenchScale(
        name="medium",
        duration_us=40_000.0,
        warmup_us=10_000.0,
        workers_per_partition=3,
        inflight_per_worker=2,
        ycsb_keys_per_partition=20_000,
        tpcc_warehouses_per_partition=8,
        tpcc_items=500,
        tpcc_customers_per_district=60,
        sweep_points=4,
        tatp_subscribers_per_partition=10_000,
        smallbank_accounts_per_partition=10_000,
    ),
    "paper": BenchScale(
        name="paper",
        duration_us=100_000.0,
        warmup_us=20_000.0,
        workers_per_partition=4,
        inflight_per_worker=3,
        ycsb_keys_per_partition=100_000,
        tpcc_warehouses_per_partition=16,
        tpcc_items=2_000,
        tpcc_customers_per_district=200,
        sweep_points=6,
        tatp_subscribers_per_partition=20_000,
        smallbank_accounts_per_partition=20_000,
    ),
    # Million-key tiers (ROADMAP item 3).  Only feasible on the columnar
    # storage backend (storage_backend="auto" + a fixed workload schema):
    # dict-backed tables need ~8x the memory at these populations.  The
    # simulated durations are short — the point of these tiers is *population*
    # (cold caches, deep Zipf tails, hundreds of concurrent clients), not
    # simulated seconds, and loading dominates wall-clock anyway.
    "xlarge": BenchScale(
        name="xlarge",
        duration_us=20_000.0,
        warmup_us=5_000.0,
        workers_per_partition=25,       # x4 partitions x2 inflight = 200 clients
        inflight_per_worker=2,
        ycsb_keys_per_partition=250_000,  # x4 partitions = 1M keys
        tpcc_warehouses_per_partition=32,
        tpcc_items=5_000,
        tpcc_customers_per_district=500,
        sweep_points=3,
        tatp_subscribers_per_partition=250_000,
        smallbank_accounts_per_partition=125_000,  # x2 tables x4 = 1M rows
    ),
    "web": BenchScale(
        name="web",
        duration_us=20_000.0,
        warmup_us=5_000.0,
        workers_per_partition=25,       # x4 partitions x5 inflight = 500 clients
        inflight_per_worker=5,
        ycsb_keys_per_partition=1_250_000,  # x4 partitions = 5M keys
        tpcc_warehouses_per_partition=64,
        tpcc_items=10_000,
        tpcc_customers_per_district=1_000,
        sweep_points=3,
        tatp_subscribers_per_partition=1_250_000,
        smallbank_accounts_per_partition=625_000,  # x2 tables x4 = 5M rows
    ),
}


#: Tiny preset for tests and gates: each cell simulates in a fraction of a
#: second.  Registered like the figure-quality presets (so the CLI and
#: scenario files accept ``"tiny"`` first-class) and also kept as a module
#: constant for the test suite.
TINY_SCALE = BenchScale(
    name="tiny",
    duration_us=6_000.0,
    warmup_us=2_000.0,
    workers_per_partition=1,
    inflight_per_worker=2,
    ycsb_keys_per_partition=2_000,
    tpcc_warehouses_per_partition=2,
    tpcc_items=50,
    tpcc_customers_per_district=10,
    sweep_points=2,
    tatp_subscribers_per_partition=500,
    smallbank_accounts_per_partition=500,
)

_DESCRIPTIONS = {
    "xlarge": "1M YCSB keys, 200 clients; needs the columnar storage backend",
    "web": "5M YCSB keys, 500 clients; needs the columnar storage backend",
}

register_scale(TINY_SCALE, description="test/gate preset: fraction of a second per cell")
for _name, _scale in _PRESETS.items():
    register_scale(
        _scale,
        description=_DESCRIPTIONS.get(
            _name,
            f"{_scale.duration_us / 1000.0:g} ms simulated, "
            f"{_scale.sweep_points} sweep points",
        ),
    )
del _name, _scale


def resolve_scale(scale) -> BenchScale:
    """Coerce a scale given by name, mapping, or instance into a BenchScale.

    Names are looked up in the scale registry, so externally registered
    presets resolve everywhere built-ins do — and an unknown name raises the
    registry's did-you-mean :class:`~repro.registry.UnknownNameError`.
    """
    if isinstance(scale, BenchScale):
        return scale
    if isinstance(scale, str):
        return SCALE_REGISTRY.get(scale)
    if isinstance(scale, dict):
        return BenchScale(**scale)
    raise TypeError(f"scale must be a name, dict or BenchScale, not {type(scale).__name__}")


def sweep_values(values: list, scale: BenchScale) -> list:
    """Thin a sweep down to the scale's number of points (keeping endpoints)."""
    if len(values) <= scale.sweep_points:
        return list(values)
    if scale.sweep_points == 1:
        return [values[-1]]
    step = (len(values) - 1) / (scale.sweep_points - 1)
    indices = sorted({round(i * step) for i in range(scale.sweep_points)})
    return [values[i] for i in indices]
