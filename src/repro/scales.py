"""Run-size presets shared by the scenario layer and the benchmark harness.

A :class:`BenchScale` bundles everything that makes a run bigger or smaller
without changing its semantics: simulated duration, per-partition concurrency,
and the population sizing of every registered workload.  Three figure-quality
presets are exposed to the CLI (``small``/``medium``/``paper``); the extra
``tiny`` preset is for tests and gates, where each cell must simulate in a
fraction of a second.

This lives outside ``repro.bench`` so ``repro.scenario`` (which every bench
entry point is built on) can import it without a cycle; ``repro.bench.runner``
re-exports the same names for existing call sites.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BenchScale", "SCALES", "TINY_SCALE", "resolve_scale", "sweep_values"]


@dataclass(frozen=True)
class BenchScale:
    """Run-size preset used by the experiment functions."""

    name: str
    duration_us: float
    warmup_us: float
    workers_per_partition: int
    inflight_per_worker: int
    ycsb_keys_per_partition: int
    tpcc_warehouses_per_partition: int
    tpcc_items: int
    tpcc_customers_per_district: int
    sweep_points: int  # how many points of each sweep to keep
    # Extension-workload populations (see each workload's ``scale_defaults``
    # registration).  Defaulted so pre-existing BenchScale(...) call sites
    # keep constructing.
    tatp_subscribers_per_partition: int = 20_000
    smallbank_accounts_per_partition: int = 20_000


SCALES: dict[str, BenchScale] = {
    "small": BenchScale(
        name="small",
        duration_us=20_000.0,
        warmup_us=5_000.0,
        workers_per_partition=2,
        inflight_per_worker=2,
        ycsb_keys_per_partition=10_000,
        tpcc_warehouses_per_partition=4,
        tpcc_items=200,
        tpcc_customers_per_district=30,
        sweep_points=3,
        tatp_subscribers_per_partition=5_000,
        smallbank_accounts_per_partition=5_000,
    ),
    "medium": BenchScale(
        name="medium",
        duration_us=40_000.0,
        warmup_us=10_000.0,
        workers_per_partition=3,
        inflight_per_worker=2,
        ycsb_keys_per_partition=20_000,
        tpcc_warehouses_per_partition=8,
        tpcc_items=500,
        tpcc_customers_per_district=60,
        sweep_points=4,
        tatp_subscribers_per_partition=10_000,
        smallbank_accounts_per_partition=10_000,
    ),
    "paper": BenchScale(
        name="paper",
        duration_us=100_000.0,
        warmup_us=20_000.0,
        workers_per_partition=4,
        inflight_per_worker=3,
        ycsb_keys_per_partition=100_000,
        tpcc_warehouses_per_partition=16,
        tpcc_items=2_000,
        tpcc_customers_per_district=200,
        sweep_points=6,
        tatp_subscribers_per_partition=20_000,
        smallbank_accounts_per_partition=20_000,
    ),
}


#: Tiny preset for tests and gates: each cell simulates in a fraction of a
#: second.  Deliberately not in :data:`SCALES` so the CLI only offers the
#: figure-quality presets, but :func:`resolve_scale` accepts it by name.
TINY_SCALE = BenchScale(
    name="tiny",
    duration_us=6_000.0,
    warmup_us=2_000.0,
    workers_per_partition=1,
    inflight_per_worker=2,
    ycsb_keys_per_partition=2_000,
    tpcc_warehouses_per_partition=2,
    tpcc_items=50,
    tpcc_customers_per_district=10,
    sweep_points=2,
    tatp_subscribers_per_partition=500,
    smallbank_accounts_per_partition=500,
)


def resolve_scale(scale) -> BenchScale:
    """Coerce a scale given by name, mapping, or instance into a BenchScale."""
    if isinstance(scale, BenchScale):
        return scale
    if isinstance(scale, str):
        if scale == TINY_SCALE.name:
            return TINY_SCALE
        if scale in SCALES:
            return SCALES[scale]
        from .registry import unknown_name_error

        raise unknown_name_error(
            "scale", scale, tuple(sorted(SCALES)) + (TINY_SCALE.name,)
        )
    if isinstance(scale, dict):
        return BenchScale(**scale)
    raise TypeError(f"scale must be a name, dict or BenchScale, not {type(scale).__name__}")


def sweep_values(values: list, scale: BenchScale) -> list:
    """Thin a sweep down to the scale's number of points (keeping endpoints)."""
    if len(values) <= scale.sweep_points:
        return list(values)
    if scale.sweep_points == 1:
        return [values[-1]]
    step = (len(values) - 1) / (scale.sweep_points - 1)
    indices = sorted({round(i * step) for i in range(scale.sweep_points)})
    return [values[i] for i in indices]
