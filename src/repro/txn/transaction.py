"""Transaction descriptors: identifiers, read/write sets, status and timing.

A transaction is created by the worker loop at its *home* partition (the
coordinator, §4.1), given a globally-unique TID (coordinator id + local
counter) and then driven through a protocol.  The read-set and write-set
entries keep enough metadata for every protocol in the repo: observed TicToc
timestamps for Primo/Sundial, observed versions for Silo validation, and the
owning partition for routing the commit phase.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import total_ordering
from typing import Any, Optional

__all__ = [
    "TxnId",
    "TxnStatus",
    "ReadEntry",
    "WriteEntry",
    "Transaction",
    "TxnAborted",
    "UserAbort",
    "AbortReason",
]


@total_ordering
class TxnId:
    """Globally unique transaction id: (local counter, coordinator id).

    Ordering follows the counter first, so a smaller TID is (approximately)
    an older transaction — exactly what the WAIT_DIE policy needs.

    TIDs key every lock-holder dict and active-transaction registry, so the
    hash is computed once at construction and cached; ``__hash__`` on the
    hot path is a slot read, not a tuple allocation.
    """

    __slots__ = ("sequence", "coordinator", "_hash")

    def __init__(self, sequence: int, coordinator: int):
        self.sequence = sequence
        self.coordinator = coordinator
        self._hash = hash((sequence, coordinator))

    def _key(self) -> tuple[int, int]:
        return (self.sequence, self.coordinator)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TxnId)
            and self.sequence == other.sequence
            and self.coordinator == other.coordinator
        )

    def __lt__(self, other: "TxnId") -> bool:
        return self._key() < other._key()

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"TxnId({self.sequence}, p{self.coordinator})"


class TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTING = "committing"
    COMMITTED = "committed"          # writes installed, waiting for durability
    DURABLE = "durable"              # result returned to the client
    ABORTED = "aborted"
    CRASH_ABORTED = "crash_aborted"  # rolled back by the recovery protocol


class AbortReason(enum.Enum):
    LOCK_CONFLICT = "lock_conflict"
    VALIDATION = "validation"
    DEADLOCK_PREVENTION = "deadlock_prevention"
    MODE_SWITCH = "mode_switch"      # Primo local→distributed re-check failed
    USER = "user"
    CRASH = "crash"
    RESERVATION = "reservation"      # Aria reservation lost


class TxnAborted(Exception):
    """Raised inside protocol/context code to unwind an aborting transaction."""

    def __init__(self, reason: AbortReason = AbortReason.LOCK_CONFLICT, detail: str = ""):
        super().__init__(f"{reason.value}: {detail}" if detail else reason.value)
        self.reason = reason
        self.detail = detail


class UserAbort(TxnAborted):
    """Explicit Rollback issued by the transaction logic (§4.2 corner cases)."""

    def __init__(self, detail: str = ""):
        super().__init__(AbortReason.USER, detail)


@dataclass(slots=True)
class ReadEntry:
    """One record read by the transaction."""

    partition: int
    table: str
    key: Any
    value: dict
    wts: float = 0.0
    rts: float = 0.0
    version: int = 0
    locked: bool = False          # did we take an exclusive lock for this read (WCF)?
    dummy: bool = False           # dummy read added for blind-write handling
    local: bool = True


@dataclass(slots=True)
class WriteEntry:
    """One buffered write (installed only at commit)."""

    partition: int
    table: str
    key: Any
    updates: dict
    is_insert: bool = False
    is_delete: bool = False
    local: bool = True


@dataclass(slots=True)
class Transaction:
    """Runtime state of a single transaction attempt."""

    tid: TxnId
    coordinator: int
    name: str = "txn"
    status: TxnStatus = TxnStatus.ACTIVE
    is_distributed: bool = False
    read_only: bool = False

    # Logical (TicToc) timestamp assigned in the commit phase, and the lower
    # bound used by the watermark scheme before the real ts is known (§5.1 R1).
    ts: Optional[float] = None
    lower_bound_ts: float = 0.0

    read_set: list = field(default_factory=list)
    write_set: list = field(default_factory=list)
    participants: set = field(default_factory=set)
    abort_reason: Optional[AbortReason] = None

    # (partition, table, key) -> entry indices over the two sets, so the
    # per-operation find_read/find_write lookups are O(1) instead of linear
    # scans (a transaction re-reads its own records constantly).
    _read_index: dict = field(default_factory=dict)
    _write_index: dict = field(default_factory=dict)

    # Wall-of-simulation timing marks used for latency/breakdown reporting.
    start_time: float = 0.0
    execute_end_time: float = 0.0
    commit_end_time: float = 0.0
    durable_time: float = 0.0
    first_start_time: float = 0.0  # across retries, for end-to-end latency

    # Per-component time (µs) for the latency-breakdown figures; protocols fill
    # in '2pc'/'timestamp'/'commit'/'wait_batch'/'sequence', the worker loop
    # fills in 'execute'/'backoff'/'return'.
    breakdown: dict = field(default_factory=dict)

    def add_breakdown(self, component: str, duration: float) -> None:
        if duration > 0:
            self.breakdown[component] = self.breakdown.get(component, 0.0) + duration

    def effective_ts(self) -> float:
        """The timestamp the watermark scheme should use for this transaction."""
        return self.ts if self.ts is not None else self.lower_bound_ts

    # -- read/write set helpers -------------------------------------------
    def find_read(self, partition: int, table: str, key) -> Optional[ReadEntry]:
        return self._read_index.get((partition, table, key))

    def find_write(self, partition: int, table: str, key) -> Optional[WriteEntry]:
        return self._write_index.get((partition, table, key))

    def add_read(self, entry: ReadEntry) -> None:
        self.read_set.append(entry)
        self._read_index.setdefault((entry.partition, entry.table, entry.key), entry)
        if not entry.local:
            self.is_distributed = True
            self.participants.add(entry.partition)

    def add_write(self, entry: WriteEntry) -> None:
        index_key = (entry.partition, entry.table, entry.key)
        existing = self._write_index.get(index_key)
        if existing is not None and not entry.is_insert:
            existing.updates.update(entry.updates)
            return
        self.write_set.append(entry)
        if existing is None:
            self._write_index[index_key] = entry
        if not entry.local:
            self.is_distributed = True
            self.participants.add(entry.partition)

    def reads_for_partition(self, partition: int) -> list:
        return [e for e in self.read_set if e.partition == partition]

    def writes_for_partition(self, partition: int) -> list:
        return [e for e in self.write_set if e.partition == partition]

    def write_covered_by_read(self, partition: int, table: str, key) -> bool:
        """Is this write's record already in the read-set (write-set ⊆ read-set)?"""
        return self.find_read(partition, table, key) is not None

    def all_partitions(self) -> set:
        """Every partition the transaction touched, including the coordinator."""
        return {self.coordinator} | set(self.participants)
