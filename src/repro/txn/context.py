"""Transaction context handed to workload logic.

Workload transactions are written once and run unchanged under every
protocol.  They are simulation generators receiving a :class:`TxnContext`:

    def new_order(ctx):
        warehouse = yield from ctx.read(w_partition, "warehouse", w_id)
        ...
        yield from ctx.update(w_partition, "district", d_key, {"d_next_o_id": next_o_id})

Each protocol provides a concrete subclass that implements the read path
(locking discipline, remote RPCs, timestamp bookkeeping).  The base class
implements routing-independent conveniences: read-my-own-writes, buffered
updates/inserts, user aborts and index lookups.
"""

from __future__ import annotations

from typing import Generator

from .transaction import Transaction, UserAbort, WriteEntry

__all__ = ["TxnContext"]


class TxnContext:
    """Base class for protocol-specific transaction contexts."""

    def __init__(self, protocol, server, txn: Transaction):
        self.protocol = protocol
        self.server = server
        self.txn = txn
        self.env = server.env

    # -- helpers shared by all protocols ----------------------------------
    @property
    def home_partition(self) -> int:
        return self.server.partition_id

    def is_local(self, partition: int) -> bool:
        return partition == self.server.partition_id

    def _merge_own_writes(self, partition: int, table: str, key, value: dict) -> dict:
        """Overlay this transaction's buffered writes on a freshly read value."""
        write = self.txn.find_write(partition, table, key)
        if write is None:
            return value
        merged = dict(value)
        merged.update(write.updates)
        return merged

    # -- operations used by workload logic ---------------------------------
    def read(self, partition: int, table: str, key) -> Generator:
        """Read a record; returns its value dictionary (a private copy)."""
        value = yield from self._protocol_read(partition, table, key)
        cluster = self.server.cluster
        if cluster.stale_read_active:
            # A stale_read fault window is open: this read may observe the
            # pre-durable snapshot (counted, protocol-independent).
            cluster.note_read(partition)
        return self._merge_own_writes(partition, table, key, value)

    def update(self, partition: int, table: str, key, updates: dict) -> Generator:
        """Buffer an update of selected columns of an existing record."""
        yield from self._protocol_write(
            WriteEntry(
                partition=partition,
                table=table,
                key=key,
                updates=dict(updates),
                local=self.is_local(partition),
            )
        )

    def insert(self, partition: int, table: str, key, value: dict) -> Generator:
        """Buffer insertion of a new record."""
        yield from self._protocol_write(
            WriteEntry(
                partition=partition,
                table=table,
                key=key,
                updates=dict(value),
                is_insert=True,
                local=self.is_local(partition),
            )
        )

    def delete(self, partition: int, table: str, key) -> Generator:
        """Buffer deletion of a record."""
        yield from self._protocol_write(
            WriteEntry(
                partition=partition,
                table=table,
                key=key,
                updates={},
                is_delete=True,
                local=self.is_local(partition),
            )
        )

    def read_for_update(self, partition: int, table: str, key) -> Generator:
        """Read a record that will subsequently be written (a hint; by default
        identical to :meth:`read`, protocols may override to lock eagerly)."""
        value = yield from self.read(partition, table, key)
        return value

    def index_lookup(self, partition: int, table: str, index: str, index_key) -> Generator:
        """Return the list of primary keys matching a secondary-index key."""
        keys = yield from self.protocol.index_lookup(
            self.server, self.txn, partition, table, index, index_key
        )
        return keys

    def abort(self, detail: str = "") -> None:
        """User-specified abort (Rollback); never retried by the worker loop."""
        raise UserAbort(detail)

    # -- hooks implemented by each protocol ---------------------------------
    def _protocol_read(self, partition: int, table: str, key) -> Generator:
        raise NotImplementedError

    def _protocol_write(self, entry: WriteEntry) -> Generator:
        raise NotImplementedError
