"""Transaction layer: identifiers, read/write sets, status and contexts."""

from .context import TxnContext
from .transaction import (
    AbortReason,
    ReadEntry,
    Transaction,
    TxnAborted,
    TxnId,
    TxnStatus,
    UserAbort,
    WriteEntry,
)

__all__ = [
    "AbortReason",
    "ReadEntry",
    "Transaction",
    "TxnAborted",
    "TxnContext",
    "TxnId",
    "TxnStatus",
    "UserAbort",
    "WriteEntry",
]
