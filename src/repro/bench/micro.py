"""Shared substrate micro-benchmark bodies.

Single source of truth for the hot-path workloads measured both by the
pytest-benchmark suite (``benchmarks/bench_micro_substrate.py``) and by the
regression gate (``scripts/bench_gate.py``): if the two measured different
code, the committed ``BENCH_substrate.json`` trajectory would stop meaning
what the local benchmark numbers say.

Every body takes an iteration count and runs the workload to completion;
callers time the call.
"""

from __future__ import annotations

from ..sim.engine import Environment, Event
from ..sim.network import Network
from ..sim.randgen import DeterministicRandom, ZipfGenerator

__all__ = [
    "bench_engine_dispatch",
    "bench_engine_timeout",
    "bench_process_spawn",
    "bench_network_rpc",
    "bench_network_send",
    "bench_zipf",
    "bench_zipf_1m",
    "MICRO_BENCHMARKS",
]


def bench_engine_dispatch(n: int) -> None:
    """Zero-delay succeed() chains through the fast-dispatch lane."""
    env = Environment()

    def proc():
        for _ in range(n):
            event = Event(env)
            event.succeed(None)
            yield event

    env.process(proc())
    env.run_all()


def bench_engine_timeout(n: int) -> None:
    """Heap-scheduled timeout events."""
    env = Environment()

    def proc():
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc())
    env.run_all()


def bench_process_spawn(n: int) -> None:
    """Spawn-and-await trivial child processes."""
    env = Environment()

    def child():
        return 1
        yield  # pragma: no cover - generator marker

    def proc():
        for _ in range(n):
            yield env.process(child())

    env.process(proc())
    env.run_all()


def bench_network_rpc(n: int) -> None:
    """Local request/response round trips with a plain handler."""
    env = Environment()
    network = Network(env)

    def handler(value):
        return value + 1

    def proc():
        for i in range(n):
            yield from network.rpc(0, 0, handler, i)

    env.process(proc())
    env.run_all()


def bench_network_send(n: int) -> None:
    """One-way sends with a plain handler (Timeout-callback delivery)."""
    env = Environment()
    network = Network(env)
    sink = []
    for i in range(n):
        network.send(0, 1, sink.append, i)
    env.run_all()


def bench_zipf(n: int) -> None:
    """Zipf key draws at YCSB's default skew."""
    zipf = ZipfGenerator(100_000, 0.6, DeterministicRandom(7))
    draw = zipf.next
    for _ in range(n):
        draw()


def bench_zipf_1m(n: int) -> None:
    """Zipf key draws over a million-key population (xlarge-tier hot path).

    Setup cost (the generator's harmonic tables over 1M keys) is part of the
    timed body on purpose: the xlarge tiers pay it once per worker stream, so
    a regression there is a real regression of the large-tier load phase.
    """
    zipf = ZipfGenerator(1_000_000, 0.6, DeterministicRandom(7))
    draw = zipf.next
    for _ in range(n):
        draw()


#: name -> (body, default iteration count), as measured by the bench gate.
MICRO_BENCHMARKS = {
    "engine_dispatch": (bench_engine_dispatch, 200_000),
    "engine_timeout": (bench_engine_timeout, 200_000),
    "process_spawn": (bench_process_spawn, 50_000),
    "network_rpc": (bench_network_rpc, 50_000),
    "network_send": (bench_network_send, 100_000),
    "zipf": (bench_zipf, 200_000),
    "zipf_1m": (bench_zipf_1m, 200_000),
}
