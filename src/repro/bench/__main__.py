"""Command-line entry point: ``python -m repro.bench --figure fig06 --scale medium``."""

from __future__ import annotations

import argparse
import sys

from .experiments import ALL_EXPERIMENTS
from .runner import SCALES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures on the simulated cluster.",
    )
    parser.add_argument(
        "--figure",
        action="append",
        choices=sorted(ALL_EXPERIMENTS),
        help="figure to run (repeatable); default: all figures",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="run size: small (seconds per point), medium, or paper",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    figures = args.figure or sorted(ALL_EXPERIMENTS)
    for name in figures:
        ALL_EXPERIMENTS[name](scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
