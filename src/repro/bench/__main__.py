"""Command-line entry point: ``python -m repro.bench --figure fig06 --scale medium``.

Figures are planned first, then the union of their cells is executed through
the orchestrator — across processes with ``--jobs N`` and memoized under
``--cache-dir`` so an interrupted or repeated sweep only simulates what is
missing.  ``--emit-json`` writes the per-figure data dictionaries plus sweep
accounting as a machine-readable artifact (used by the figures-smoke CI job).

The registries are the CLI's source of truth: ``--list protocols`` (or
``workloads``/``durability``/``figures``/``scales``/``faults``/``arrivals``/
``engines``) prints
everything currently registered — including extensions registered by imported
user code — and ``--scenario file.json`` runs declarative
:class:`~repro.scenario.ScenarioSpec` documents — fault plans and workload
mixes included — through the same cached orchestrator as the figures (see
``examples/scenarios/`` for a cookbook).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from ..sim import engine as sim_engine
from ..registry import (
    ARRIVAL_REGISTRY,
    DURABILITY_REGISTRY,
    FAULT_REGISTRY,
    FIGURE_REGISTRY,
    PROTOCOL_REGISTRY,
    SCALE_REGISTRY,
    WORKLOAD_REGISTRY,
    UnknownNameError,
)
from ..scales import SCALES
from ..scenario import ScenarioSpec
from .experiments import FIGURES
from .orchestrator import Cell, NullCache, ResultCache, SUBSTRATE_VERSION, run_cells
from .report import print_header, print_table

DEFAULT_CACHE_DIR = ".bench-cache"

#: ``--list`` targets: name -> () -> [(name, description), ...].
LISTINGS = {
    "protocols": lambda: [
        (e.name, _protocol_blurb(e)) for e in PROTOCOL_REGISTRY.entries()
    ],
    "workloads": lambda: [
        (e.name, _workload_blurb(e)) for e in WORKLOAD_REGISTRY.entries()
    ],
    "durability": lambda: [
        (e.name, e.metadata.get("description", "")) for e in DURABILITY_REGISTRY.entries()
    ],
    "figures": lambda: [
        (e.name, e.metadata.get("description", "")) for e in FIGURE_REGISTRY.entries()
    ],
    "scales": lambda: [
        (e.name, e.metadata.get("description", "")
                 or f"{e.obj.duration_us / 1000.0:g} ms simulated, "
                    f"{e.obj.sweep_points} sweep points")
        for e in SCALE_REGISTRY.entries()
    ],
    "faults": lambda: [
        (e.name, _fault_blurb(e)) for e in FAULT_REGISTRY.entries()
    ],
    "arrivals": lambda: [
        (e.name, _arrival_blurb(e)) for e in ARRIVAL_REGISTRY.entries()
    ],
    "engines": lambda: _engine_rows(),
}


def _engine_rows() -> list[tuple[str, str]]:
    status = sim_engine.backend_status()

    def _mark(name: str, blurb: str) -> str:
        return f"{blurb} [selected]" if status["selected"] == name else blurb

    return [
        ("auto", "prefer the compiled kernel, fall back to pure Python (default)"),
        ("py", _mark("py", status["py"])),
        ("c", _mark("c", status["c"])),
    ]


def _arrival_blurb(entry) -> str:
    description = entry.metadata.get("description", "")
    params = entry.metadata.get("params", {})
    suffix = f"[params: {', '.join(params)}]" if params else ""
    return " ".join(part for part in (description, suffix) if part)


def _fault_blurb(entry) -> str:
    description = entry.metadata.get("description", "")
    params = entry.metadata.get("params", ())
    suffix = f"[params: {', '.join(params)}]" if params else ""
    return " ".join(part for part in (description, suffix) if part)


def _protocol_blurb(entry) -> str:
    description = entry.metadata.get("description", "")
    pairing = entry.metadata.get("default_durability", "coco")
    suffix = f"[durability: {pairing}]"
    return f"{description} {suffix}" if description else suffix


def _workload_blurb(entry) -> str:
    description = entry.metadata.get("description", "")
    config = entry.metadata.get("config_cls")
    suffix = f"[config: {config.__name__}]" if config else ""
    return " ".join(part for part in (description, suffix) if part)


def _print_listing(target: str) -> None:
    rows = LISTINGS[target]()
    width = max((len(name) for name, _ in rows), default=0)
    for name, description in rows:
        line = f"{name:<{width}}  {description}".rstrip()
        print(line)


def _load_scenarios(path: str, parser: argparse.ArgumentParser) -> list[ScenarioSpec]:
    """Parse a scenario file: one spec object or a JSON array of them."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        parser.error(f"--scenario {path}: {exc}")
    documents = data if isinstance(data, list) else [data]
    specs = []
    for i, document in enumerate(documents):
        try:
            specs.append(ScenarioSpec.from_json_dict(document))
        except (TypeError, ValueError) as exc:
            parser.error(f"--scenario {path} entry {i}: {exc}")
    return specs


def _run_scenarios(specs: list[ScenarioSpec], args, cache, progress, profile_dir=None) -> int:
    cells = [
        Cell(figure="scenario", key=f"#{i}", spec=spec)
        for i, spec in enumerate(specs)
    ]
    outcome = run_cells(cells, jobs=args.jobs, cache=cache, progress=progress,
                        profile_dir=profile_dir)
    rows = []
    for cell in cells:
        result = outcome.results[cell]
        rows.append(
            (
                cell.key,
                result.protocol,
                result.durability,
                result.workload,
                result.throughput_ktps,
                f"{result.abort_rate:.1%}",
                result.mean_latency_ms,
            )
        )
    print_header(f"{len(cells)} scenario(s) from {args.scenario}")
    print_table(
        ["scenario", "protocol", "durability", "workload", "kTPS", "abort", "avg ms"],
        rows,
    )
    if args.emit_json:
        artifact = {
            "meta": {
                "substrate_version": SUBSTRATE_VERSION,
                "jobs": args.jobs,
                "engine_backend": sim_engine.ENGINE_BACKEND,
            },
            "scenarios": [
                {
                    "spec": cell.spec.to_json_dict(),
                    "result": outcome.results[cell].summary(),
                }
                for cell in cells
            ],
        }
        with open(args.emit_json, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
        print(f"[bench] wrote {args.emit_json}", file=sys.stderr)
    return 0


def _apply_engine(requested: str, parser: argparse.ArgumentParser, reexec: bool) -> None:
    """Honor ``--engine`` even though the kernel was chosen at import time.

    Importing :mod:`repro` pulls in the engine before this module's code
    runs, so the backend cannot be swapped in-process.  When the resolved
    request differs from the loaded backend, the real CLI re-executes itself
    with ``REPRO_ENGINE`` set (and the already-resolved backend, so the new
    process cannot loop); programmatic callers of :func:`main` get a clean
    error telling them to set the variable before importing instead.
    """
    if requested == "c" and sim_engine.load_ckernel() is None:
        parser.error(
            "--engine c: the compiled scheduler kernel is unavailable "
            f"({sim_engine.C_IMPORT_ERROR}); build it with "
            "`python scripts/build_ckernel.py`"
        )
    if requested == "auto":
        resolved = "c" if sim_engine.load_ckernel() is not None else "py"
    else:
        resolved = requested
    if resolved == sim_engine.ENGINE_BACKEND:
        return
    if not reexec:
        parser.error(
            f"--engine {requested} resolves to the {resolved!r} kernel but the "
            f"{sim_engine.ENGINE_BACKEND!r} kernel is already loaded; set "
            "REPRO_ENGINE before importing repro when calling main() directly"
        )
    os.environ["REPRO_ENGINE"] = resolved
    os.execv(sys.executable, [sys.executable, "-m", "repro.bench", *sys.argv[1:]])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures on the simulated cluster.",
    )
    parser.add_argument(
        "--figure",
        "--only",
        dest="figure",
        action="append",
        metavar="FIG",
        help="figure to run (repeatable; see --list figures); default: all figures",
    )
    parser.add_argument(
        "--list",
        dest="list_target",
        choices=sorted(LISTINGS),
        help="print the registered names of the chosen kind and exit",
    )
    parser.add_argument(
        "--scenario",
        metavar="FILE",
        help="run ScenarioSpec JSON (an object or an array) instead of figures",
    )
    parser.add_argument(
        "--engine",
        choices=sim_engine.BACKENDS,
        default=None,
        help="scheduler kernel: auto (compiled when available), py (pure "
             "Python), or c (require the compiled kernel). Results are "
             "bit-identical either way (see --list engines)",
    )
    parser.add_argument(
        "--scale",
        default=None,
        choices=sorted(SCALES),
        help="run size: tiny (tests), small (seconds per point), medium, or "
             "paper (default: small; scenario files carry their own scale)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell execution (default: 1, inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"on-disk result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell; neither read nor write the cache",
    )
    parser.add_argument(
        "--emit-json",
        metavar="OUT",
        help="write per-figure data and sweep accounting to this JSON file",
    )
    parser.add_argument(
        "--quiet-progress",
        action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run every executed cell under cProfile and dump per-cell "
             ".pstats files into <cache-dir>/profiles/ (cached cells are "
             "not profiled; combine with --no-cache to profile everything)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.engine:
        _apply_engine(args.engine, parser, reexec=argv is None)

    if args.list_target:
        _print_listing(args.list_target)
        return 0

    cache = NullCache() if args.no_cache else ResultCache(args.cache_dir)
    profile_dir = None
    if args.profile:
        # Profiles live next to the cached results they were measured for.
        profile_dir = str(Path(args.cache_dir) / "profiles")
        print(f"[bench] profiling executed cells into {profile_dir}", file=sys.stderr)
    progress = None
    if not args.quiet_progress:
        def progress(message: str) -> None:
            print(f"[bench] {message}", file=sys.stderr)

    if args.scenario:
        # A scenario file carries its own scale per spec; a figure selection
        # is meaningless for it.  Reject the combination instead of silently
        # running something other than what was asked for.
        if args.figure:
            parser.error("--scenario and --figure/--only are mutually exclusive")
        if args.scale is not None:
            parser.error(
                "--scale does not apply to --scenario (set \"scale\" inside "
                "the scenario file)"
            )
        return _run_scenarios(_load_scenarios(args.scenario, parser), args, cache,
                              progress, profile_dir)

    # Validate figure names through the registry so a typo gets the same
    # did-you-mean treatment as a typo'd protocol in a ScenarioSpec.
    figure_names = args.figure or sorted(FIGURES)
    for name in figure_names:
        try:
            FIGURE_REGISTRY.check(name)
        except UnknownNameError as exc:
            parser.error(str(exc))

    scale_name = args.scale or "small"
    scale = SCALES[scale_name]
    plans = {name: FIGURES[name].plan(scale) for name in figure_names}
    all_cells = [cell for name in figure_names for cell in plans[name]]

    start = time.perf_counter()
    outcome = run_cells(all_cells, jobs=args.jobs, cache=cache, progress=progress,
                        profile_dir=profile_dir)
    wall_s = time.perf_counter() - start

    figure_data = {}
    for name in figure_names:
        figure_data[name] = FIGURES[name].render(scale, outcome.by_key(plans[name]))

    print(
        f"\n[bench] {len(all_cells)} cells "
        f"({outcome.executed} executed, {outcome.cache_hits} cached, "
        f"{outcome.deduplicated} shared) in {wall_s:.1f}s "
        f"with --jobs {args.jobs}",
        file=sys.stderr,
    )

    if args.emit_json:
        artifact = {
            "meta": {
                "scale": scale_name,
                "jobs": args.jobs,
                "figures": figure_names,
                "substrate_version": SUBSTRATE_VERSION,
                "engine_backend": sim_engine.ENGINE_BACKEND,
                "cells_total": len(all_cells),
                "cells_executed": outcome.executed,
                "cells_cached": outcome.cache_hits,
                "cells_deduplicated": outcome.deduplicated,
                "wall_s": round(wall_s, 3),
            },
            "figures": figure_data,
        }
        with open(args.emit_json, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
        print(f"[bench] wrote {args.emit_json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
