"""Command-line entry point: ``python -m repro.bench --figure fig06 --scale medium``.

Figures are planned first, then the union of their cells is executed through
the orchestrator — across processes with ``--jobs N`` and memoized under
``--cache-dir`` so an interrupted or repeated sweep only simulates what is
missing.  ``--emit-json`` writes the per-figure data dictionaries plus sweep
accounting as a machine-readable artifact (used by the figures-smoke CI job).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .experiments import FIGURES
from .orchestrator import SUBSTRATE_VERSION, NullCache, ResultCache, run_cells
from .runner import SCALES

DEFAULT_CACHE_DIR = ".bench-cache"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's figures on the simulated cluster.",
    )
    parser.add_argument(
        "--figure",
        "--only",
        dest="figure",
        action="append",
        choices=sorted(FIGURES),
        help="figure to run (repeatable); default: all figures",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="run size: small (seconds per point), medium, or paper",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cell execution (default: 1, inline)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"on-disk result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell; neither read nor write the cache",
    )
    parser.add_argument(
        "--emit-json",
        metavar="OUT",
        help="write per-figure data and sweep accounting to this JSON file",
    )
    parser.add_argument(
        "--quiet-progress",
        action="store_true",
        help="suppress per-cell progress lines on stderr",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    scale = SCALES[args.scale]
    figure_names = args.figure or sorted(FIGURES)

    plans = {name: FIGURES[name].plan(scale) for name in figure_names}
    all_cells = [cell for name in figure_names for cell in plans[name]]

    cache = NullCache() if args.no_cache else ResultCache(args.cache_dir)
    progress = None
    if not args.quiet_progress:
        def progress(message: str) -> None:
            print(f"[bench] {message}", file=sys.stderr)

    start = time.perf_counter()
    outcome = run_cells(all_cells, jobs=args.jobs, cache=cache, progress=progress)
    wall_s = time.perf_counter() - start

    figure_data = {}
    for name in figure_names:
        figure_data[name] = FIGURES[name].render(scale, outcome.by_key(plans[name]))

    print(
        f"\n[bench] {len(all_cells)} cells "
        f"({outcome.executed} executed, {outcome.cache_hits} cached, "
        f"{outcome.deduplicated} shared) in {wall_s:.1f}s "
        f"with --jobs {args.jobs}",
        file=sys.stderr,
    )

    if args.emit_json:
        artifact = {
            "meta": {
                "scale": args.scale,
                "jobs": args.jobs,
                "figures": figure_names,
                "substrate_version": SUBSTRATE_VERSION,
                "cells_total": len(all_cells),
                "cells_executed": outcome.executed,
                "cells_cached": outcome.cache_hits,
                "cells_deduplicated": outcome.deduplicated,
                "wall_s": round(wall_s, 3),
            },
            "figures": figure_data,
        }
        with open(args.emit_json, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
        print(f"[bench] wrote {args.emit_json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
