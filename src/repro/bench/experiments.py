"""Figure-level experiments: one function per table/figure of the paper.

Every figure is split into two halves so the orchestrator can parallelize and
cache the expensive part:

* a **plan** function declares the figure's simulation *cells* — independent
  (protocol, workload, scale, knobs) points — as :class:`~repro.bench.orchestrator.Cell`
  specs without running anything;
* a **render** function takes ``{cell.key: RunResult}`` for those cells,
  prints the readable report and returns the figure's data dictionary.

The classic one-shot entry points (``fig04_ycsb_overall(scale)`` …) still
exist: they plan, execute inline, and render.  ``python -m repro.bench`` goes
through :data:`FIGURES` instead so it can execute the union of every planned
cell across processes with an on-disk cache (see ``orchestrator.py``).

The pytest-benchmark files under ``benchmarks/`` call the one-shot functions
at the ``small`` scale; ``python -m repro.bench`` runs them at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.analysis import AnalysisParameters, ConflictRateModel
from ..registry import FIGURE_REGISTRY
from ..scenario import ScenarioSpec, sweep as scenario_sweep
from ..sim.stats import BREAKDOWN_COMPONENTS
from .orchestrator import Cell, make_cell, run_cells
from .report import print_header, print_table
from .runner import BenchScale, SCALES, sweep_values

__all__ = [
    "ALL_EXPERIMENTS",
    "FIGURES",
    "FigureSpec",
    "fig04_ycsb_overall",
    "fig05_tpcc_overall",
    "fig06_contention",
    "fig07_distributed_ratio",
    "fig08_read_write_ratio",
    "fig09_blind_writes",
    "fig10_warehouses",
    "fig11_logging_schemes",
    "fig12_interval",
    "fig13_lagging",
    "fig14_scalability",
    "fig15_tapir",
    "openloop_curves",
    "storm_degradation",
    "appendix_analysis",
]

#: Protocols compared in the overall-performance figures (Figs. 4, 5).
OVERALL_PROTOCOLS = ("2pl_nw", "2pl_wd", "silo", "sundial", "aria", "primo")


def _execute_inline(cells: list[Cell], results: Optional[dict]) -> dict:
    """Results for ``cells`` keyed by cell key, computing inline if needed."""
    if results is not None:
        return results
    outcome = run_cells(cells, jobs=1, cache=None)
    return outcome.by_key(cells)


# ---------------------------------------------------------------------------
# Figures 4 and 5: overall performance and breakdowns
# ---------------------------------------------------------------------------

def _overall_plan(figure: str, scale: BenchScale, workload: str) -> list[Cell]:
    cells = [
        make_cell(figure, protocol, protocol, scale, workload=workload)
        for protocol in OVERALL_PROTOCOLS
    ]
    # "Primo w/o WM" for the (b) factor breakdown: WCF with COCO group commit.
    cells.append(
        make_cell(figure, "primo@coco", "primo", scale, workload=workload,
                  durability="coco")
    )
    return cells


def _overall_render(results: dict, workload: str, paper_factor: float,
                    figure: str) -> dict:
    """Shared report of Figs. 4 and 5 (a-d)."""
    protocol_results = {name: results[name] for name in OVERALL_PROTOCOLS}

    # (b) factor breakdown: Sundial reference, then add WCF, then WM.
    # "Primo w/o WM & WCF" (TicToc locally + 2PL/2PC for distributed txns) is
    # approximated by 2PL(WD)+COCO — see EXPERIMENTS.md for the substitution.
    breakdown = {
        "sundial (reference)": protocol_results["sundial"],
        "primo w/o WM & WCF (2PL+2PC proxy)": protocol_results["2pl_wd"],
        "primo w/o WM (WCF + COCO)": results["primo@coco"],
        "primo (WCF + WM)": protocol_results["primo"],
    }

    sundial_tps = protocol_results["sundial"].throughput_tps or 1.0
    best_other = max(
        r.throughput_tps for name, r in protocol_results.items() if name != "primo"
    ) or 1.0
    rows = []
    for name, result in protocol_results.items():
        rows.append(
            (
                name,
                result.throughput_ktps,
                f"{result.throughput_tps / best_other:.2f}x" if name == "primo" else "",
                f"{result.abort_rate:.1%}",
                result.mean_latency_ms,
                result.p99_latency_ms,
            )
        )

    print_header(
        f"{figure}: overall performance on {workload.upper()} (default setting)",
        f"Primo beats the best competitor by {paper_factor:.2f}x",
    )
    print_table(
        ["protocol", "kTPS", "primo vs best", "abort", "avg ms", "p99 ms"], rows
    )

    print("\n  (b) factor breakdown (ratios vs Sundial; paper: 0.76x/0.87x -> 1.78x/1.35x -> 1.91x/1.42x)")
    print_table(
        ["variant", "kTPS", "vs sundial"],
        [
            (name, r.throughput_ktps, f"{r.throughput_tps / sundial_tps:.2f}x")
            for name, r in breakdown.items()
        ],
    )

    print("\n  (c) latency breakdown (average µs per committed transaction)")
    print_table(
        ["protocol"] + list(BREAKDOWN_COMPONENTS),
        [
            [name] + [result.breakdown_us.get(c, 0.0) for c in BREAKDOWN_COMPONENTS]
            for name, result in protocol_results.items()
        ],
    )

    print("\n  (d) tail latency (99th percentile, ms)")
    print_table(
        ["protocol", "p99 ms"],
        [(name, result.p99_latency_ms) for name, result in protocol_results.items()],
    )

    return {
        "results": {name: r.summary() for name, r in protocol_results.items()},
        "factor_breakdown": {name: r.summary() for name, r in breakdown.items()},
        "primo_vs_best": protocol_results["primo"].throughput_tps / best_other,
        "paper_factor": paper_factor,
    }


def fig04_plan(scale: BenchScale) -> list[Cell]:
    return _overall_plan("fig04", scale, "ycsb")


def fig04_render(scale: BenchScale, results: dict) -> dict:
    return _overall_render(results, "ycsb", paper_factor=1.91, figure="Figure 4")


def fig04_ycsb_overall(scale: BenchScale = SCALES["small"], *,
                       results: Optional[dict] = None) -> dict:
    """Figure 4: overall performance and breakdowns on YCSB."""
    return fig04_render(scale, _execute_inline(fig04_plan(scale), results))


def fig05_plan(scale: BenchScale) -> list[Cell]:
    return _overall_plan("fig05", scale, "tpcc")


def fig05_render(scale: BenchScale, results: dict) -> dict:
    return _overall_render(results, "tpcc", paper_factor=1.42, figure="Figure 5")


def fig05_tpcc_overall(scale: BenchScale = SCALES["small"], *,
                       results: Optional[dict] = None) -> dict:
    """Figure 5: overall performance and breakdowns on TPC-C."""
    return fig05_render(scale, _execute_inline(fig05_plan(scale), results))


# ---------------------------------------------------------------------------
# Figure 6: contention
# ---------------------------------------------------------------------------

def fig06_plan(scale: BenchScale,
               protocols: tuple = ("sundial", "2pl_nw", "primo")) -> list[Cell]:
    skews = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 0.95], scale)
    return [
        make_cell("fig06", f"{protocol}@skew{skew}", protocol, scale,
                  workload="ycsb", workload_overrides={"zipf_theta": skew})
        for skew in skews
        for protocol in protocols
    ]


def fig06_render(scale: BenchScale, results: dict,
                 protocols: tuple = ("sundial", "2pl_nw", "primo")) -> dict:
    skews = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 0.95], scale)
    series: dict[str, list] = {p: [] for p in protocols}
    aborts: dict[str, list] = {p: [] for p in protocols}
    for skew in skews:
        for protocol in protocols:
            result = results[f"{protocol}@skew{skew}"]
            series[protocol].append(result.throughput_ktps)
            aborts[protocol].append(result.abort_rate)
    print_header(
        "Figure 6: impact of contention (YCSB skew sweep)",
        "Primo wins at every skew; margin grows with contention (1.19x -> 2.18x)",
    )
    print_table(
        ["skew"] + [f"{p} kTPS" for p in protocols] + [f"{p} abort" for p in protocols],
        [
            [skews[i]]
            + [series[p][i] for p in protocols]
            + [f"{aborts[p][i]:.1%}" for p in protocols]
            for i in range(len(skews))
        ],
    )
    return {"skews": skews, "throughput_ktps": series, "abort_rate": aborts}


def fig06_contention(scale: BenchScale = SCALES["small"],
                     protocols: tuple = ("sundial", "2pl_nw", "primo"), *,
                     results: Optional[dict] = None) -> dict:
    """Figure 6: throughput and abort rate vs Zipf skew."""
    cells = fig06_plan(scale, protocols)
    return fig06_render(scale, _execute_inline(cells, results), protocols)


# ---------------------------------------------------------------------------
# Figure 7: fraction of distributed transactions
# ---------------------------------------------------------------------------

FIG07_CONTENTION_LEVELS = (("low_contention", 0.0), ("high_contention", 0.9))


def fig07_plan(scale: BenchScale,
               protocols: tuple = ("sundial", "primo")) -> list[Cell]:
    ratios = sweep_values([0.05, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    return [
        make_cell(
            "fig07", f"{protocol}@{label}@r{ratio}", protocol, scale,
            workload="ycsb",
            workload_overrides={"zipf_theta": skew, "distributed_pct": ratio},
        )
        for label, skew in FIG07_CONTENTION_LEVELS
        for ratio in ratios
        for protocol in protocols
    ]


def fig07_render(scale: BenchScale, results: dict,
                 protocols: tuple = ("sundial", "primo")) -> dict:
    ratios = sweep_values([0.05, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    out = {}
    for label, skew in FIG07_CONTENTION_LEVELS:
        series = {p: [] for p in protocols}
        for ratio in ratios:
            for protocol in protocols:
                result = results[f"{protocol}@{label}@r{ratio}"]
                series[protocol].append(result.throughput_ktps)
        out[label] = series
        print_header(
            f"Figure 7 ({label}): impact of % distributed transactions (skew={skew})",
            "low contention: 1.12x -> 1.58x; high contention: 2.46x -> 1.96x",
        )
        print_table(
            ["% distributed"] + [f"{p} kTPS" for p in protocols],
            [[f"{ratios[i]:.0%}"] + [series[p][i] for p in protocols] for i in range(len(ratios))],
        )
    return {"ratios": ratios, **out}


def fig07_distributed_ratio(scale: BenchScale = SCALES["small"],
                            protocols: tuple = ("sundial", "primo"), *,
                            results: Optional[dict] = None) -> dict:
    """Figure 7: throughput vs fraction of distributed transactions."""
    cells = fig07_plan(scale, protocols)
    return fig07_render(scale, _execute_inline(cells, results), protocols)


# ---------------------------------------------------------------------------
# Figure 8: read-write ratio
# ---------------------------------------------------------------------------

FIG08_DISTRIBUTED_LEVELS = (("20pct_distributed", 0.2), ("80pct_distributed", 0.8))


def fig08_plan(scale: BenchScale,
               protocols: tuple = ("sundial", "primo")) -> list[Cell]:
    write_ratios = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    return [
        make_cell(
            "fig08", f"{protocol}@{label}@w{write_pct}", protocol, scale,
            workload="ycsb",
            workload_overrides={"write_pct": write_pct, "distributed_pct": distributed},
        )
        for label, distributed in FIG08_DISTRIBUTED_LEVELS
        for write_pct in write_ratios
        for protocol in protocols
    ]


def fig08_render(scale: BenchScale, results: dict,
                 protocols: tuple = ("sundial", "primo")) -> dict:
    write_ratios = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    out = {}
    for label, _distributed in FIG08_DISTRIBUTED_LEVELS:
        series = {p: [] for p in protocols}
        for write_pct in write_ratios:
            for protocol in protocols:
                result = results[f"{protocol}@{label}@w{write_pct}"]
                series[protocol].append(result.throughput_ktps)
        out[label] = series
        print_header(
            f"Figure 8 ({label}): impact of the read-write ratio",
            "Primo stable as writes grow; 0.96x/0.82x at 0% writes up to 2.86x/2.81x at 100%",
        )
        print_table(
            ["% writes"] + [f"{p} kTPS" for p in protocols],
            [[f"{write_ratios[i]:.0%}"] + [series[p][i] for p in protocols]
             for i in range(len(write_ratios))],
        )
    return {"write_ratios": write_ratios, **out}


def fig08_read_write_ratio(scale: BenchScale = SCALES["small"],
                           protocols: tuple = ("sundial", "primo"), *,
                           results: Optional[dict] = None) -> dict:
    """Figure 8: throughput vs % of write operations (20% and 80% distributed)."""
    cells = fig08_plan(scale, protocols)
    return fig08_render(scale, _execute_inline(cells, results), protocols)


# ---------------------------------------------------------------------------
# Figure 9: blind writes
# ---------------------------------------------------------------------------

def fig09_plan(scale: BenchScale) -> list[Cell]:
    ratios = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    return [
        make_cell("fig09", f"{protocol}@b{ratio}", protocol, scale,
                  workload="ycsb", workload_overrides={"blind_write_pct": ratio})
        for ratio in ratios
        for protocol in ("primo", "sundial")
    ]


def fig09_render(scale: BenchScale, results: dict) -> dict:
    ratios = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    series = {"primo": [], "sundial": []}
    for ratio in ratios:
        for protocol in series:
            series[protocol].append(results[f"{protocol}@b{ratio}"].throughput_ktps)
    print_header(
        "Figure 9: impact of the blind-write ratio",
        "Primo wins while blind writes < ~80%; even at 100% it needs no more roundtrips than 2PC",
    )
    print_table(
        ["blind-write ratio", "primo kTPS", "sundial kTPS", "primo/sundial"],
        [
            [f"{ratios[i]:.0%}", series["primo"][i], series["sundial"][i],
             f"{series['primo'][i] / max(series['sundial'][i], 1e-9):.2f}x"]
            for i in range(len(ratios))
        ],
    )
    return {"ratios": ratios, **series}


def fig09_blind_writes(scale: BenchScale = SCALES["small"], *,
                       results: Optional[dict] = None) -> dict:
    """Figure 9: Primo vs Sundial as the blind-write ratio grows."""
    return fig09_render(scale, _execute_inline(fig09_plan(scale), results))


# ---------------------------------------------------------------------------
# Figure 10: warehouses
# ---------------------------------------------------------------------------

def fig10_plan(scale: BenchScale,
               protocols: tuple = ("sundial", "primo")) -> list[Cell]:
    warehouse_counts = sweep_values([1, 2, 4, 8, 16, 32], scale)
    return [
        make_cell(
            "fig10", f"{protocol}@w{warehouses}", protocol, scale,
            workload="tpcc",
            workload_overrides={"warehouses_per_partition": warehouses},
        )
        for warehouses in warehouse_counts
        for protocol in protocols
    ]


def fig10_render(scale: BenchScale, results: dict,
                 protocols: tuple = ("sundial", "primo")) -> dict:
    warehouse_counts = sweep_values([1, 2, 4, 8, 16, 32], scale)
    series = {p: [] for p in protocols}
    for warehouses in warehouse_counts:
        for protocol in protocols:
            series[protocol].append(
                results[f"{protocol}@w{warehouses}"].throughput_ktps
            )
    print_header(
        "Figure 10: impact of the number of warehouses (TPC-C)",
        "Primo wins at every size; improvement larger with fewer warehouses (1.61x -> 1.15x)",
    )
    print_table(
        ["warehouses/partition"] + [f"{p} kTPS" for p in protocols],
        [[warehouse_counts[i]] + [series[p][i] for p in protocols]
         for i in range(len(warehouse_counts))],
    )
    return {"warehouses": warehouse_counts, **series}


def fig10_warehouses(scale: BenchScale = SCALES["small"],
                     protocols: tuple = ("sundial", "primo"), *,
                     results: Optional[dict] = None) -> dict:
    """Figure 10: TPC-C throughput vs number of warehouses per partition."""
    cells = fig10_plan(scale, protocols)
    return fig10_render(scale, _execute_inline(cells, results), protocols)


# ---------------------------------------------------------------------------
# Figure 11: logging schemes
# ---------------------------------------------------------------------------

FIG11_SCHEMES = ("clv", "coco", "wm")


def fig11_plan(scale: BenchScale, workload: str = "ycsb",
               protocols: tuple = ("2pl_wd", "sundial", "primo")) -> list[Cell]:
    return [
        make_cell("fig11", f"{protocol}@{scheme}", protocol, scale,
                  workload=workload, durability=scheme)
        for protocol in protocols
        for scheme in FIG11_SCHEMES
    ]


def fig11_render(scale: BenchScale, results: dict, workload: str = "ycsb",
                 protocols: tuple = ("2pl_wd", "sundial", "primo")) -> dict:
    table = {}
    for protocol in protocols:
        table[protocol] = {}
        for scheme in FIG11_SCHEMES:
            table[protocol][scheme] = results[f"{protocol}@{scheme}"].throughput_ktps
    print_header(
        f"Figure 11: logging/group-commit schemes on {workload.upper()}",
        "WM > COCO > CLV for every concurrency-control scheme",
    )
    print_table(
        ["protocol"] + [s.upper() for s in FIG11_SCHEMES],
        [[p] + [table[p][s] for s in FIG11_SCHEMES] for p in protocols],
    )
    return {"throughput_ktps": table}


def fig11_logging_schemes(scale: BenchScale = SCALES["small"],
                          workload: str = "ycsb",
                          protocols: tuple = ("2pl_wd", "sundial", "primo"), *,
                          results: Optional[dict] = None) -> dict:
    """Figure 11: CLV vs COCO vs WM under several concurrency-control schemes."""
    cells = fig11_plan(scale, workload, protocols)
    return fig11_render(scale, _execute_inline(cells, results), workload, protocols)


# ---------------------------------------------------------------------------
# Figure 12: watermark interval / epoch size
# ---------------------------------------------------------------------------

def fig12_plan(scale: BenchScale) -> list[Cell]:
    intervals_ms = sweep_values([2.0, 5.0, 10.0, 20.0, 40.0], scale)
    crash_time = scale.warmup_us + scale.duration_us * 0.6
    return [
        make_cell(
            "fig12", f"{scheme}@i{interval_ms}", "primo", scale,
            workload="ycsb", durability=scheme,
            epoch_length_us=interval_ms * 1000.0,
            crash_partition=1, crash_time_us=crash_time,
        )
        for interval_ms in intervals_ms
        for scheme in ("wm", "coco")
    ]


def fig12_render(scale: BenchScale, results: dict) -> dict:
    intervals_ms = sweep_values([2.0, 5.0, 10.0, 20.0, 40.0], scale)
    rows = []
    data = {"wm": {}, "coco": {}}
    for interval_ms in intervals_ms:
        for scheme in ("wm", "coco"):
            result = results[f"{scheme}@i{interval_ms}"]
            data[scheme][interval_ms] = result
            rows.append(
                (scheme, interval_ms, result.mean_latency_ms,
                 f"{result.crash_abort_rate:.2%}", result.throughput_ktps)
            )
    print_header(
        "Figure 12: impact of the watermark interval / epoch size",
        "latency and crash-abort rate grow with the interval; WM > COCO throughput at equal interval",
    )
    print_table(["scheme", "interval ms", "avg latency ms", "crash aborts", "kTPS"], rows)
    return {
        "intervals_ms": intervals_ms,
        "latency_ms": {s: [data[s][i].mean_latency_ms for i in intervals_ms] for s in data},
        "crash_abort_rate": {s: [data[s][i].crash_abort_rate for i in intervals_ms] for s in data},
        "throughput_ktps": {s: [data[s][i].throughput_ktps for i in intervals_ms] for s in data},
    }


def fig12_interval(scale: BenchScale = SCALES["small"], *,
                   results: Optional[dict] = None) -> dict:
    """Figure 12: watermark-interval / epoch-size trade-off (latency, crash aborts, throughput)."""
    return fig12_render(scale, _execute_inline(fig12_plan(scale), results))


# ---------------------------------------------------------------------------
# Figure 13: lagging watermarks and slow partitions
# ---------------------------------------------------------------------------

FIG13_SLOW_VARIANTS = (
    ("wm_force_update", True), ("wm_no_force_update", False), ("coco", None),
)


def fig13_plan(scale: BenchScale) -> list[Cell]:
    # Both halves are declarative fault plans now; the legacy scalar knobs
    # compile to exactly these events (bit-identity pinned by
    # tests/api/test_faults.py).
    delays_ms = sweep_values([0.0, 5.0, 10.0, 20.0, 30.0], scale)
    cells = [
        # (a) delay only the watermark/epoch control messages of partition 1.
        make_cell(
            "fig13", f"{scheme}@d{delay_ms}", "primo", scale,
            workload="ycsb", durability=scheme,
            faults=[{"kind": "message_delay", "target": 1,
                     "delay_us": delay_ms * 1000.0}],
        )
        for delay_ms in delays_ms
        for scheme in ("wm", "coco")
    ]
    for label, force_update in FIG13_SLOW_VARIANTS:
        scheme = "coco" if label == "coco" else "wm"
        cells.append(
            make_cell(
                # (b) slow down partition 1 by inflating its message latency.
                "fig13", f"slow@{label}", "primo", scale,
                workload="ycsb", durability=scheme,
                watermark_force_update=bool(force_update),
                cpu_record_access_us=0.4,
                faults=[{"kind": "slow_partition", "target": 1,
                         "delay_us": 200.0}],
            )
        )
    return cells


def fig13_render(scale: BenchScale, results: dict) -> dict:
    delays_ms = sweep_values([0.0, 5.0, 10.0, 20.0, 30.0], scale)
    message_delay = {"wm": {"throughput": [], "latency": []},
                     "coco": {"throughput": [], "latency": []}}
    for delay_ms in delays_ms:
        for scheme in ("wm", "coco"):
            result = results[f"{scheme}@d{delay_ms}"]
            message_delay[scheme]["throughput"].append(result.throughput_ktps)
            message_delay[scheme]["latency"].append(result.mean_latency_ms)

    print_header(
        "Figure 13a: lagging due to watermark/epoch message delay",
        "WM throughput is unaffected by message delay while COCO's drops; latency rises for both",
    )
    print_table(
        ["delay ms", "WM kTPS", "WM ms", "COCO kTPS", "COCO ms"],
        [
            [delays_ms[i], message_delay["wm"]["throughput"][i], message_delay["wm"]["latency"][i],
             message_delay["coco"]["throughput"][i], message_delay["coco"]["latency"][i]]
            for i in range(len(delays_ms))
        ],
    )

    slow = {}
    for label, _force_update in FIG13_SLOW_VARIANTS:
        result = results[f"slow@{label}"]
        slow[label] = {"throughput_ktps": result.throughput_ktps,
                       "latency_ms": result.mean_latency_ms}
    print_header(
        "Figure 13b: lagging due to a slow partition",
        "force-updating the slow partition's watermark keeps WM latency close to COCO",
    )
    print_table(
        ["configuration", "kTPS", "avg latency ms"],
        [[k, v["throughput_ktps"], v["latency_ms"]] for k, v in slow.items()],
    )
    return {"delays_ms": delays_ms, "message_delay": message_delay, "slow_partition": slow}


def fig13_lagging(scale: BenchScale = SCALES["small"], *,
                  results: Optional[dict] = None) -> dict:
    """Figure 13: lagging watermark/epoch messages and a slow partition."""
    return fig13_render(scale, _execute_inline(fig13_plan(scale), results))


# ---------------------------------------------------------------------------
# Figure 14: scalability
# ---------------------------------------------------------------------------

def fig14_plan(scale: BenchScale, workload: str = "ycsb",
               protocols: tuple = ("sundial", "primo")) -> list[Cell]:
    partition_counts = sweep_values([1, 2, 4, 8, 12, 16, 20], scale)
    cells = []
    for n_partitions in partition_counts:
        for protocol in protocols:
            cells.append(
                make_cell("fig14", f"{protocol}@n{n_partitions}", protocol, scale,
                          workload=workload, n_partitions=n_partitions)
            )
        cells.append(
            make_cell("fig14", f"primo(coco)@n{n_partitions}", "primo", scale,
                      workload=workload, n_partitions=n_partitions,
                      durability="coco")
        )
    return cells


def fig14_render(scale: BenchScale, results: dict, workload: str = "ycsb",
                 protocols: tuple = ("sundial", "primo")) -> dict:
    partition_counts = sweep_values([1, 2, 4, 8, 12, 16, 20], scale)
    series: dict[str, list] = {p: [] for p in protocols}
    series["primo(coco)"] = []
    for n_partitions in partition_counts:
        for protocol in protocols:
            series[protocol].append(
                results[f"{protocol}@n{n_partitions}"].throughput_ktps
            )
        series["primo(coco)"].append(
            results[f"primo(coco)@n{n_partitions}"].throughput_ktps
        )
    print_header(
        f"Figure 14: scalability on {workload.upper()}",
        "Primo scales best (3.2x/1.7x over the best baseline at 20 partitions); COCO flattens past ~12",
    )
    print_table(
        ["partitions"] + list(series.keys()),
        [[partition_counts[i]] + [series[name][i] for name in series]
         for i in range(len(partition_counts))],
    )
    return {"partitions": partition_counts, "throughput_ktps": series}


def fig14_scalability(scale: BenchScale = SCALES["small"], workload: str = "ycsb",
                      protocols: tuple = ("sundial", "primo"), *,
                      results: Optional[dict] = None) -> dict:
    """Figure 14: scalability with the number of partitions (plus Primo with COCO)."""
    cells = fig14_plan(scale, workload, protocols)
    return fig14_render(scale, _execute_inline(cells, results), workload, protocols)


# ---------------------------------------------------------------------------
# Figure 15: TAPIR comparison
# ---------------------------------------------------------------------------

FIG15_CONDITIONS = (
    ("low_contention_20pct", 0.0, 0.2),
    ("low_contention_80pct", 0.0, 0.8),
    ("high_contention_20pct", 0.9, 0.2),
    ("high_contention_80pct", 0.9, 0.8),
)


def fig15_plan(scale: BenchScale) -> list[Cell]:
    return [
        make_cell(
            "fig15", f"{protocol}@{label}", protocol, scale,
            workload="ycsb",
            workload_overrides={"zipf_theta": skew, "distributed_pct": distributed},
            workers_per_partition=1, inflight_per_worker=4,
        )
        for label, skew, distributed in FIG15_CONDITIONS
        for protocol in ("primo", "tapir")
    ]


def fig15_render(scale: BenchScale, results: dict) -> dict:
    rows = []
    data = {}
    for label, _skew, _distributed in FIG15_CONDITIONS:
        entry = {
            protocol: results[f"{protocol}@{label}"]
            for protocol in ("primo", "tapir")
        }
        data[label] = entry
        ratio = entry["primo"].throughput_tps / max(entry["tapir"].throughput_tps, 1e-9)
        rows.append(
            (label, entry["primo"].throughput_ktps, entry["tapir"].throughput_ktps,
             f"{ratio:.2f}x", entry["primo"].mean_latency_ms, entry["tapir"].mean_latency_ms)
        )
    print_header(
        "Figure 15: comparison with TAPIR (one worker per server)",
        "Primo 4.1x-8.3x higher throughput; TAPIR much lower latency (no group commit)",
    )
    print_table(
        ["condition", "primo kTPS", "tapir kTPS", "ratio", "primo ms", "tapir ms"], rows
    )
    return {
        label: {p: r.summary() for p, r in entry.items()} for label, entry in data.items()
    }


def fig15_tapir(scale: BenchScale = SCALES["small"], *,
                results: Optional[dict] = None) -> dict:
    """Figure 15: Primo vs TAPIR (single worker per server, as in §6.6)."""
    return fig15_render(scale, _execute_inline(fig15_plan(scale), results))


# ---------------------------------------------------------------------------
# Appendix A: analytical model (no simulation cells)
# ---------------------------------------------------------------------------

def appendix_plan(scale: BenchScale) -> list[Cell]:
    return []


def appendix_render(scale: BenchScale, results: dict) -> dict:
    base = AnalysisParameters()
    read_ratios = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
    rows = ConflictRateModel.sweep_read_ratio(base, read_ratios)
    print_header(
        "Appendix A: analytical conflict-rate comparison",
        "Primo has the lower conflict rate whenever the read ratio R_r < 0.8 (with R_u = 0.6)",
    )
    print_table(
        ["read ratio", "CR_2PC", "CR_Primo", "primo wins"],
        [[r["read_ratio"], r["cr_2pc"], r["cr_primo"], r["primo_wins"]] for r in rows],
    )
    return {"rows": rows}


def appendix_analysis(scale: BenchScale = SCALES["small"], *,
                      results: Optional[dict] = None) -> dict:
    """Appendix A: the analytical conflict-rate model (CR_2PC vs CR_Primo)."""
    return appendix_render(scale, results or {})


# ---------------------------------------------------------------------------
# Open-loop load curves (ROADMAP item 1 — not a paper figure)
# ---------------------------------------------------------------------------

#: Protocols compared on the offered-load sweep.
OPENLOOP_PROTOCOLS = ("2pl_nw", "sundial", "primo")

#: Offered load as fractions of the measured saturation anchor; thinned per
#: scale by ``sweep_values`` like every other sweep.
OPENLOOP_LOAD_FRACTIONS = (0.5, 0.8, 1.0, 1.2)

#: Measured closed-loop saturation (committed tps, primo on YCSB, fixed seed)
#: per scale — the 1.0x anchor of the offered-load sweep.  Measured 2026-08
#: from the fixed-seed runs behind ``scripts/bench_gate.py`` (e.g. small:
#: 4447 committed / 20 ms ≈ 222 kTPS).
OPENLOOP_SATURATION_TPS = {"tiny": 90_000.0, "small": 220_000.0}


def openloop_saturation_tps(scale: BenchScale) -> float:
    """The sweep's 1.0x offered-load anchor for ``scale``.

    Unmeasured scales extrapolate from the small anchor by execution width
    (workers × inflight) — a nominal anchor: the curves still show the knee,
    it just may not sit exactly at 1.0x.
    """
    rate = OPENLOOP_SATURATION_TPS.get(scale.name)
    if rate is not None:
        return rate
    small = SCALES["small"]
    width = scale.workers_per_partition * scale.inflight_per_worker
    small_width = small.workers_per_partition * small.inflight_per_worker
    return OPENLOOP_SATURATION_TPS["small"] * width / small_width


def _openloop_keys(fractions: list) -> list[str]:
    return [f"{protocol}@x{fraction:g}"
            for protocol in OPENLOOP_PROTOCOLS for fraction in fractions]


def openloop_plan(scale: BenchScale) -> list[Cell]:
    """One Poisson offered-load point per (protocol, fraction) — a plain
    ``repro.sweep`` over the ``arrival`` axis."""
    fractions = sweep_values(list(OPENLOOP_LOAD_FRACTIONS), scale)
    saturation = openloop_saturation_tps(scale)
    base = ScenarioSpec(protocol="primo", workload="ycsb", scale=scale)
    specs = scenario_sweep(
        base,
        protocol=list(OPENLOOP_PROTOCOLS),
        arrival=[{"kind": "poisson", "rate_tps": saturation * fraction}
                 for fraction in fractions],
    )
    return [Cell("openloop", key, spec)
            for key, spec in zip(_openloop_keys(fractions), specs)]


def openloop_render(scale: BenchScale, results: dict) -> dict:
    """Throughput-vs-offered-load plus p50/p99/p999 latency curves."""
    fractions = sweep_values(list(OPENLOOP_LOAD_FRACTIONS), scale)
    saturation = openloop_saturation_tps(scale)
    print_header(
        "Open loop: throughput and latency vs offered load (Poisson arrivals)",
        "latency includes admission queueing; the tail explodes past 1.0x of saturation",
    )
    data: dict = {
        "saturation_tps": saturation,
        "offered_tps": [saturation * fraction for fraction in fractions],
        "protocols": {},
    }
    for protocol in OPENLOOP_PROTOCOLS:
        series = {"achieved_ktps": [], "p50_ms": [], "p99_ms": [],
                  "p999_ms": [], "dropped": []}
        rows = []
        for fraction in fractions:
            result = results[f"{protocol}@x{fraction:g}"]
            dropped = result.metrics.counters.get("arrivals_dropped")
            series["achieved_ktps"].append(result.throughput_ktps)
            series["p50_ms"].append(result.p50_latency_ms)
            series["p99_ms"].append(result.p99_latency_ms)
            series["p999_ms"].append(result.p999_latency_ms)
            series["dropped"].append(dropped)
            rows.append((
                f"{fraction:g}x",
                saturation * fraction / 1000.0,
                result.throughput_ktps,
                result.p50_latency_ms,
                result.p99_latency_ms,
                result.p999_latency_ms,
                dropped,
            ))
        print(f"\n  {protocol}")
        print_table(
            ["offered", "offered kTPS", "kTPS", "p50 ms", "p99 ms", "p999 ms",
             "dropped"],
            rows,
        )
        data["protocols"][protocol] = series
    return data


def openloop_curves(scale: BenchScale = SCALES["small"], *,
                    results: Optional[dict] = None) -> dict:
    """Open-loop offered-load sweep: throughput and tail-latency curves."""
    cells = openloop_plan(scale)
    return openloop_render(scale, _execute_inline(cells, results))


# ---------------------------------------------------------------------------
# The standard storm: degradation and recovery under replication faults
# ---------------------------------------------------------------------------

def storm_duration_us(scale: BenchScale) -> float:
    """The storm's measurement window for ``scale``.

    Leader fail-over (detection + §5.2 recovery) takes ~20-25 ms of simulated
    time regardless of scale, so the window is stretched to fit a full
    crash → stall → recovery arc; smaller presets keep their sizing (keys,
    workers) and just measure longer.
    """
    return max(scale.duration_us * 3.0, 60_000.0)


def storm_plan(scale: BenchScale) -> list[Cell]:
    """One :func:`repro.faults.standard_storm` run per registered protocol."""
    from ..faults import standard_storm
    from ..registry import PROTOCOL_REGISTRY

    duration = storm_duration_us(scale)
    return [
        make_cell(
            "storm", protocol, protocol, scale,
            faults=standard_storm(scale.warmup_us, duration),
            duration_us=duration,
            # A fast failure detector, so the storm's leader flap is detected
            # and recovered well inside the measurement window.
            heartbeat_interval_us=500.0,
            heartbeat_timeout_us=2_000.0,
        )
        for protocol in PROTOCOL_REGISTRY.names()
    ]


def storm_render(scale: BenchScale, results: dict) -> dict:
    """Per-protocol degradation/recovery table + the windowed tps series."""
    from statistics import median

    from ..registry import PROTOCOL_REGISTRY

    print_header(
        "The standard storm: degradation and recovery under replication faults",
        "follower lag, slow partition, follower crash, leader flap, stale reads "
        "— one curated plan, every protocol",
    )
    data: dict = {
        "duration_us": storm_duration_us(scale),
        "protocols": {},
    }
    rows = []
    for protocol in PROTOCOL_REGISTRY.names():
        result = results[protocol]
        timeline = result.timeline
        tps = timeline.throughput_tps() if timeline is not None else []
        trimmed = tps[: len(timeline._completed_counts())] if timeline else []
        baseline = median(trimmed) if trimmed else 0.0
        depth = result.degradation_depth
        t90 = result.time_to_90pct_recovery_us
        counters = result.metrics.counters
        series = {
            "window_us": timeline.window_us if timeline is not None else None,
            "throughput_tps": tps,
            "mean_latency_us": (timeline.mean_latency_us()
                                if timeline is not None else []),
            "degradation_depth": depth,
            "time_to_90pct_recovery_us": t90,
            "stale_reads": counters.get("stale_reads"),
            "crashes_injected": counters.get("crashes_injected"),
            "recovery_time_us": counters.get("recovery_time_us"),
        }
        data["protocols"][protocol] = series
        rows.append((
            protocol,
            result.throughput_ktps,
            baseline / 1000.0,
            (min(trimmed) / 1000.0) if trimmed else 0.0,
            f"{depth:.0%}" if depth is not None else "-",
            f"{t90 / 1000.0:.1f}" if t90 is not None else "never",
            counters.get("stale_reads"),
            counters.get("crashes_injected"),
        ))
    print_table(
        ["protocol", "kTPS", "median win kTPS", "min win kTPS",
         "depth", "t90 ms", "stale reads", "crashes"],
        rows,
    )
    return data


def storm_degradation(scale: BenchScale = SCALES["small"], *,
                      results: Optional[dict] = None) -> dict:
    """The standard storm across every registered protocol."""
    cells = storm_plan(scale)
    return storm_render(scale, _execute_inline(cells, results))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FigureSpec:
    """Planner/renderer pair the orchestrator drives for one figure.

    ``plan(scale)`` declares the cells; ``render(scale, results_by_key)``
    consumes ``{cell.key: RunResult}`` and returns the figure's data dict.
    """

    name: str
    plan: Callable
    render: Callable


def _register_figure(name: str, plan: Callable, render: Callable,
                     description: str = "") -> None:
    FIGURE_REGISTRY.register(
        name, FigureSpec(name, plan, render), description=description
    )


_register_figure("fig04", fig04_plan, fig04_render, "overall performance on YCSB")
_register_figure("fig05", fig05_plan, fig05_render, "overall performance on TPC-C")
_register_figure("fig06", fig06_plan, fig06_render, "impact of contention (Zipf skew)")
_register_figure("fig07", fig07_plan, fig07_render, "% distributed transactions")
_register_figure("fig08", fig08_plan, fig08_render, "read-write ratio")
_register_figure("fig09", fig09_plan, fig09_render, "blind-write ratio")
_register_figure("fig10", fig10_plan, fig10_render, "TPC-C warehouses")
_register_figure("fig11", fig11_plan, fig11_render, "logging / group-commit schemes")
_register_figure("fig12", fig12_plan, fig12_render, "watermark interval / epoch size")
_register_figure("fig13", fig13_plan, fig13_render, "lagging watermarks, slow partition")
_register_figure("fig14", fig14_plan, fig14_render, "scalability with partitions")
_register_figure("fig15", fig15_plan, fig15_render, "comparison with TAPIR")
_register_figure("openloop", openloop_plan, openloop_render,
                 "throughput + p50/p99/p999 latency vs offered load "
                 "(open-loop Poisson arrivals)")
_register_figure("storm", storm_plan, storm_render,
                 "degradation depth + time-to-recovery under the standard "
                 "storm (replication faults), every protocol")
_register_figure("appendix", appendix_plan, appendix_render,
                 "analytical conflict-rate model")

#: name -> FigureSpec — a live view of the figure registry, used by
#: ``python -m repro.bench`` and the figures gate.  Figures registered by
#: external code (``repro.registry.register_figure``) appear here too.
FIGURES = FIGURE_REGISTRY.as_mapping()

#: name -> one-shot callable (plan + inline execute + render), kept for the
#: pytest-benchmark suite and any callers that predate the orchestrator.
ALL_EXPERIMENTS = {
    "fig04": fig04_ycsb_overall,
    "fig05": fig05_tpcc_overall,
    "fig06": fig06_contention,
    "fig07": fig07_distributed_ratio,
    "fig08": fig08_read_write_ratio,
    "fig09": fig09_blind_writes,
    "fig10": fig10_warehouses,
    "fig11": fig11_logging_schemes,
    "fig12": fig12_interval,
    "fig13": fig13_lagging,
    "fig14": fig14_scalability,
    "fig15": fig15_tapir,
    "openloop": openloop_curves,
    "storm": storm_degradation,
    "appendix": appendix_analysis,
}
