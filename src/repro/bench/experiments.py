"""Figure-level experiments: one function per table/figure of the paper.

Every function takes a :class:`~repro.bench.runner.BenchScale` and returns a
dictionary with the measured series plus the paper's headline numbers, and
prints a readable report.  The pytest-benchmark files under ``benchmarks/``
call these functions at the ``small`` scale; ``python -m repro.bench`` runs
them at any scale.
"""

from __future__ import annotations

from typing import Optional

from ..core.analysis import AnalysisParameters, ConflictRateModel
from ..sim.stats import BREAKDOWN_COMPONENTS
from .report import print_header, print_table
from .runner import BenchScale, SCALES, run_config, sweep_values

__all__ = [
    "ALL_EXPERIMENTS",
    "fig04_ycsb_overall",
    "fig05_tpcc_overall",
    "fig06_contention",
    "fig07_distributed_ratio",
    "fig08_read_write_ratio",
    "fig09_blind_writes",
    "fig10_warehouses",
    "fig11_logging_schemes",
    "fig12_interval",
    "fig13_lagging",
    "fig14_scalability",
    "fig15_tapir",
    "appendix_analysis",
]

#: Protocols compared in the overall-performance figures (Figs. 4, 5).
OVERALL_PROTOCOLS = ("2pl_nw", "2pl_wd", "silo", "sundial", "aria", "primo")


def _overall(scale: BenchScale, workload: str, paper_factor: float, figure: str) -> dict:
    """Shared implementation of Figs. 4 and 5 (a-d)."""
    results = {}
    for protocol in OVERALL_PROTOCOLS:
        results[protocol] = run_config(protocol, scale, workload=workload)

    # (b) factor breakdown: Sundial reference, then add WCF, then WM.
    # "Primo w/o WM & WCF" (TicToc locally + 2PL/2PC for distributed txns) is
    # approximated by 2PL(WD)+COCO — see EXPERIMENTS.md for the substitution.
    breakdown = {
        "sundial (reference)": results["sundial"],
        "primo w/o WM & WCF (2PL+2PC proxy)": results["2pl_wd"],
        "primo w/o WM (WCF + COCO)": run_config("primo", scale, workload=workload, durability="coco"),
        "primo (WCF + WM)": results["primo"],
    }

    sundial_tps = results["sundial"].throughput_tps or 1.0
    best_other = max(
        r.throughput_tps for name, r in results.items() if name != "primo"
    ) or 1.0
    rows = []
    for name, result in results.items():
        rows.append(
            (
                name,
                result.throughput_ktps,
                f"{result.throughput_tps / best_other:.2f}x" if name == "primo" else "",
                f"{result.abort_rate:.1%}",
                result.mean_latency_ms,
                result.p99_latency_ms,
            )
        )

    print_header(
        f"{figure}: overall performance on {workload.upper()} (default setting)",
        f"Primo beats the best competitor by {paper_factor:.2f}x",
    )
    print_table(
        ["protocol", "kTPS", "primo vs best", "abort", "avg ms", "p99 ms"], rows
    )

    print("\n  (b) factor breakdown (ratios vs Sundial; paper: 0.76x/0.87x -> 1.78x/1.35x -> 1.91x/1.42x)")
    print_table(
        ["variant", "kTPS", "vs sundial"],
        [
            (name, r.throughput_ktps, f"{r.throughput_tps / sundial_tps:.2f}x")
            for name, r in breakdown.items()
        ],
    )

    print("\n  (c) latency breakdown (average µs per committed transaction)")
    print_table(
        ["protocol"] + list(BREAKDOWN_COMPONENTS),
        [
            [name] + [result.breakdown_us.get(c, 0.0) for c in BREAKDOWN_COMPONENTS]
            for name, result in results.items()
        ],
    )

    print("\n  (d) tail latency (99th percentile, ms)")
    print_table(
        ["protocol", "p99 ms"],
        [(name, result.p99_latency_ms) for name, result in results.items()],
    )

    return {
        "results": {name: r.summary() for name, r in results.items()},
        "factor_breakdown": {name: r.summary() for name, r in breakdown.items()},
        "primo_vs_best": results["primo"].throughput_tps / best_other,
        "paper_factor": paper_factor,
    }


def fig04_ycsb_overall(scale: BenchScale = SCALES["small"]) -> dict:
    """Figure 4: overall performance and breakdowns on YCSB."""
    return _overall(scale, "ycsb", paper_factor=1.91, figure="Figure 4")


def fig05_tpcc_overall(scale: BenchScale = SCALES["small"]) -> dict:
    """Figure 5: overall performance and breakdowns on TPC-C."""
    return _overall(scale, "tpcc", paper_factor=1.42, figure="Figure 5")


def fig06_contention(scale: BenchScale = SCALES["small"],
                     protocols: tuple = ("sundial", "2pl_nw", "primo")) -> dict:
    """Figure 6: throughput and abort rate vs Zipf skew."""
    skews = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 0.95], scale)
    series: dict[str, list] = {p: [] for p in protocols}
    aborts: dict[str, list] = {p: [] for p in protocols}
    for skew in skews:
        for protocol in protocols:
            result = run_config(
                protocol, scale, workload="ycsb", workload_overrides={"zipf_theta": skew}
            )
            series[protocol].append(result.throughput_ktps)
            aborts[protocol].append(result.abort_rate)
    print_header(
        "Figure 6: impact of contention (YCSB skew sweep)",
        "Primo wins at every skew; margin grows with contention (1.19x -> 2.18x)",
    )
    print_table(
        ["skew"] + [f"{p} kTPS" for p in protocols] + [f"{p} abort" for p in protocols],
        [
            [skews[i]]
            + [series[p][i] for p in protocols]
            + [f"{aborts[p][i]:.1%}" for p in protocols]
            for i in range(len(skews))
        ],
    )
    return {"skews": skews, "throughput_ktps": series, "abort_rate": aborts}


def fig07_distributed_ratio(scale: BenchScale = SCALES["small"],
                            protocols: tuple = ("sundial", "primo")) -> dict:
    """Figure 7: throughput vs fraction of distributed transactions."""
    ratios = sweep_values([0.05, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    out = {}
    for label, skew in (("low_contention", 0.0), ("high_contention", 0.9)):
        series = {p: [] for p in protocols}
        for ratio in ratios:
            for protocol in protocols:
                result = run_config(
                    protocol, scale, workload="ycsb",
                    workload_overrides={"zipf_theta": skew, "distributed_pct": ratio},
                )
                series[protocol].append(result.throughput_ktps)
        out[label] = series
        print_header(
            f"Figure 7 ({label}): impact of % distributed transactions (skew={skew})",
            "low contention: 1.12x -> 1.58x; high contention: 2.46x -> 1.96x",
        )
        print_table(
            ["% distributed"] + [f"{p} kTPS" for p in protocols],
            [[f"{ratios[i]:.0%}"] + [series[p][i] for p in protocols] for i in range(len(ratios))],
        )
    return {"ratios": ratios, **out}


def fig08_read_write_ratio(scale: BenchScale = SCALES["small"],
                           protocols: tuple = ("sundial", "primo")) -> dict:
    """Figure 8: throughput vs % of write operations (20% and 80% distributed)."""
    write_ratios = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    out = {}
    for label, distributed in (("20pct_distributed", 0.2), ("80pct_distributed", 0.8)):
        series = {p: [] for p in protocols}
        for write_pct in write_ratios:
            for protocol in protocols:
                result = run_config(
                    protocol, scale, workload="ycsb",
                    workload_overrides={"write_pct": write_pct, "distributed_pct": distributed},
                )
                series[protocol].append(result.throughput_ktps)
        out[label] = series
        print_header(
            f"Figure 8 ({label}): impact of the read-write ratio",
            "Primo stable as writes grow; 0.96x/0.82x at 0% writes up to 2.86x/2.81x at 100%",
        )
        print_table(
            ["% writes"] + [f"{p} kTPS" for p in protocols],
            [[f"{write_ratios[i]:.0%}"] + [series[p][i] for p in protocols]
             for i in range(len(write_ratios))],
        )
    return {"write_ratios": write_ratios, **out}


def fig09_blind_writes(scale: BenchScale = SCALES["small"]) -> dict:
    """Figure 9: Primo vs Sundial as the blind-write ratio grows."""
    ratios = sweep_values([0.0, 0.2, 0.4, 0.6, 0.8, 1.0], scale)
    series = {"primo": [], "sundial": []}
    for ratio in ratios:
        for protocol in series:
            result = run_config(
                protocol, scale, workload="ycsb",
                workload_overrides={"blind_write_pct": ratio},
            )
            series[protocol].append(result.throughput_ktps)
    print_header(
        "Figure 9: impact of the blind-write ratio",
        "Primo wins while blind writes < ~80%; even at 100% it needs no more roundtrips than 2PC",
    )
    print_table(
        ["blind-write ratio", "primo kTPS", "sundial kTPS", "primo/sundial"],
        [
            [f"{ratios[i]:.0%}", series["primo"][i], series["sundial"][i],
             f"{series['primo'][i] / max(series['sundial'][i], 1e-9):.2f}x"]
            for i in range(len(ratios))
        ],
    )
    return {"ratios": ratios, **series}


def fig10_warehouses(scale: BenchScale = SCALES["small"],
                     protocols: tuple = ("sundial", "primo")) -> dict:
    """Figure 10: TPC-C throughput vs number of warehouses per partition."""
    warehouse_counts = sweep_values([1, 2, 4, 8, 16, 32], scale)
    series = {p: [] for p in protocols}
    for warehouses in warehouse_counts:
        for protocol in protocols:
            result = run_config(
                protocol, scale, workload="tpcc",
                workload_overrides={"warehouses_per_partition": warehouses},
            )
            series[protocol].append(result.throughput_ktps)
    print_header(
        "Figure 10: impact of the number of warehouses (TPC-C)",
        "Primo wins at every size; improvement larger with fewer warehouses (1.61x -> 1.15x)",
    )
    print_table(
        ["warehouses/partition"] + [f"{p} kTPS" for p in protocols],
        [[warehouse_counts[i]] + [series[p][i] for p in protocols]
         for i in range(len(warehouse_counts))],
    )
    return {"warehouses": warehouse_counts, **series}


def fig11_logging_schemes(scale: BenchScale = SCALES["small"],
                          workload: str = "ycsb",
                          protocols: tuple = ("2pl_wd", "sundial", "primo")) -> dict:
    """Figure 11: CLV vs COCO vs WM under several concurrency-control schemes."""
    schemes = ("clv", "coco", "wm")
    table = {}
    for protocol in protocols:
        table[protocol] = {}
        for scheme in schemes:
            result = run_config(protocol, scale, workload=workload, durability=scheme)
            table[protocol][scheme] = result.throughput_ktps
    print_header(
        f"Figure 11: logging/group-commit schemes on {workload.upper()}",
        "WM > COCO > CLV for every concurrency-control scheme",
    )
    print_table(
        ["protocol"] + [s.upper() for s in schemes],
        [[p] + [table[p][s] for s in schemes] for p in protocols],
    )
    return {"throughput_ktps": table}


def fig12_interval(scale: BenchScale = SCALES["small"]) -> dict:
    """Figure 12: watermark-interval / epoch-size trade-off (latency, crash aborts, throughput)."""
    intervals_ms = sweep_values([2.0, 5.0, 10.0, 20.0, 40.0], scale)
    rows = []
    data = {"wm": {}, "coco": {}}
    for interval_ms in intervals_ms:
        for scheme in ("wm", "coco"):
            crash_time = scale.warmup_us + scale.duration_us * 0.6
            result = run_config(
                "primo", scale, workload="ycsb", durability=scheme,
                epoch_length_us=interval_ms * 1000.0,
                crash_partition=1, crash_time_us=crash_time,
            )
            data[scheme][interval_ms] = result
            rows.append(
                (scheme, interval_ms, result.mean_latency_ms,
                 f"{result.crash_abort_rate:.2%}", result.throughput_ktps)
            )
    print_header(
        "Figure 12: impact of the watermark interval / epoch size",
        "latency and crash-abort rate grow with the interval; WM > COCO throughput at equal interval",
    )
    print_table(["scheme", "interval ms", "avg latency ms", "crash aborts", "kTPS"], rows)
    return {
        "intervals_ms": intervals_ms,
        "latency_ms": {s: [data[s][i].mean_latency_ms for i in intervals_ms] for s in data},
        "crash_abort_rate": {s: [data[s][i].crash_abort_rate for i in intervals_ms] for s in data},
        "throughput_ktps": {s: [data[s][i].throughput_ktps for i in intervals_ms] for s in data},
    }


def fig13_lagging(scale: BenchScale = SCALES["small"]) -> dict:
    """Figure 13: lagging watermark/epoch messages and a slow partition."""
    from ..cluster.cluster import Cluster
    from ..cluster.config import SystemConfig
    from .runner import build_workload

    delays_ms = sweep_values([0.0, 5.0, 10.0, 20.0, 30.0], scale)
    message_delay = {"wm": {"throughput": [], "latency": []},
                     "coco": {"throughput": [], "latency": []}}
    for delay_ms in delays_ms:
        for scheme in ("wm", "coco"):
            config = SystemConfig.for_protocol(
                "primo", durability=scheme,
                duration_us=scale.duration_us, warmup_us=scale.warmup_us,
                workers_per_partition=scale.workers_per_partition,
                inflight_per_worker=scale.inflight_per_worker,
            )
            cluster = Cluster(config, build_workload(scale, "ycsb"))
            # Delay only the watermark/epoch control messages of partition 1.
            cluster.durability.set_message_delay(1, delay_ms * 1000.0)
            result = cluster.run()
            message_delay[scheme]["throughput"].append(result.throughput_ktps)
            message_delay[scheme]["latency"].append(result.mean_latency_ms)

    print_header(
        "Figure 13a: lagging due to watermark/epoch message delay",
        "WM throughput is unaffected by message delay while COCO's drops; latency rises for both",
    )
    print_table(
        ["delay ms", "WM kTPS", "WM ms", "COCO kTPS", "COCO ms"],
        [
            [delays_ms[i], message_delay["wm"]["throughput"][i], message_delay["wm"]["latency"][i],
             message_delay["coco"]["throughput"][i], message_delay["coco"]["latency"][i]]
            for i in range(len(delays_ms))
        ],
    )

    # (b) a slow partition: fewer worker fibers on partition 1 (masked cores).
    slow = {}
    for label, force_update in (("wm_force_update", True), ("wm_no_force_update", False), ("coco", None)):
        scheme = "coco" if label == "coco" else "wm"
        config = SystemConfig.for_protocol(
            "primo", durability=scheme,
            duration_us=scale.duration_us, warmup_us=scale.warmup_us,
            workers_per_partition=scale.workers_per_partition,
            inflight_per_worker=scale.inflight_per_worker,
            watermark_force_update=bool(force_update),
            cpu_record_access_us=0.4,
        )
        cluster = Cluster(config, build_workload(scale, "ycsb"))
        # Slow down partition 1 by inflating its message/processing latency.
        cluster.network.set_extra_delay_to(1, 200.0)
        result = cluster.run()
        slow[label] = {"throughput_ktps": result.throughput_ktps,
                       "latency_ms": result.mean_latency_ms}
    print_header(
        "Figure 13b: lagging due to a slow partition",
        "force-updating the slow partition's watermark keeps WM latency close to COCO",
    )
    print_table(
        ["configuration", "kTPS", "avg latency ms"],
        [[k, v["throughput_ktps"], v["latency_ms"]] for k, v in slow.items()],
    )
    return {"delays_ms": delays_ms, "message_delay": message_delay, "slow_partition": slow}


def fig14_scalability(scale: BenchScale = SCALES["small"], workload: str = "ycsb",
                      protocols: tuple = ("sundial", "primo")) -> dict:
    """Figure 14: scalability with the number of partitions (plus Primo with COCO)."""
    partition_counts = sweep_values([1, 2, 4, 8, 12, 16, 20], scale)
    series: dict[str, list] = {p: [] for p in protocols}
    series["primo(coco)"] = []
    for n_partitions in partition_counts:
        for protocol in protocols:
            result = run_config(
                protocol, scale, workload=workload, n_partitions=n_partitions
            )
            series[protocol].append(result.throughput_ktps)
        result = run_config(
            "primo", scale, workload=workload, n_partitions=n_partitions, durability="coco"
        )
        series["primo(coco)"].append(result.throughput_ktps)
    print_header(
        f"Figure 14: scalability on {workload.upper()}",
        "Primo scales best (3.2x/1.7x over the best baseline at 20 partitions); COCO flattens past ~12",
    )
    print_table(
        ["partitions"] + list(series.keys()),
        [[partition_counts[i]] + [series[name][i] for name in series]
         for i in range(len(partition_counts))],
    )
    return {"partitions": partition_counts, "throughput_ktps": series}


def fig15_tapir(scale: BenchScale = SCALES["small"]) -> dict:
    """Figure 15: Primo vs TAPIR (single worker per server, as in §6.6)."""
    conditions = [
        ("low_contention_20pct", 0.0, 0.2),
        ("low_contention_80pct", 0.0, 0.8),
        ("high_contention_20pct", 0.9, 0.2),
        ("high_contention_80pct", 0.9, 0.8),
    ]
    rows = []
    data = {}
    for label, skew, distributed in conditions:
        entry = {}
        for protocol in ("primo", "tapir"):
            result = run_config(
                protocol, scale, workload="ycsb",
                workload_overrides={"zipf_theta": skew, "distributed_pct": distributed},
                workers_per_partition=1, inflight_per_worker=4,
            )
            entry[protocol] = result
        data[label] = entry
        ratio = entry["primo"].throughput_tps / max(entry["tapir"].throughput_tps, 1e-9)
        rows.append(
            (label, entry["primo"].throughput_ktps, entry["tapir"].throughput_ktps,
             f"{ratio:.2f}x", entry["primo"].mean_latency_ms, entry["tapir"].mean_latency_ms)
        )
    print_header(
        "Figure 15: comparison with TAPIR (one worker per server)",
        "Primo 4.1x-8.3x higher throughput; TAPIR much lower latency (no group commit)",
    )
    print_table(
        ["condition", "primo kTPS", "tapir kTPS", "ratio", "primo ms", "tapir ms"], rows
    )
    return {
        label: {p: r.summary() for p, r in entry.items()} for label, entry in data.items()
    }


def appendix_analysis(scale: BenchScale = SCALES["small"]) -> dict:
    """Appendix A: the analytical conflict-rate model (CR_2PC vs CR_Primo)."""
    base = AnalysisParameters()
    read_ratios = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
    rows = ConflictRateModel.sweep_read_ratio(base, read_ratios)
    print_header(
        "Appendix A: analytical conflict-rate comparison",
        "Primo has the lower conflict rate whenever the read ratio R_r < 0.8 (with R_u = 0.6)",
    )
    print_table(
        ["read ratio", "CR_2PC", "CR_Primo", "primo wins"],
        [[r["read_ratio"], r["cr_2pc"], r["cr_primo"], r["primo_wins"]] for r in rows],
    )
    return {"rows": rows}


#: name -> callable, used by the CLI and the pytest-benchmark suite.
ALL_EXPERIMENTS = {
    "fig04": fig04_ycsb_overall,
    "fig05": fig05_tpcc_overall,
    "fig06": fig06_contention,
    "fig07": fig07_distributed_ratio,
    "fig08": fig08_read_write_ratio,
    "fig09": fig09_blind_writes,
    "fig10": fig10_warehouses,
    "fig11": fig11_logging_schemes,
    "fig12": fig12_interval,
    "fig13": fig13_lagging,
    "fig14": fig14_scalability,
    "fig15": fig15_tapir,
    "appendix": appendix_analysis,
}
