"""Shared helpers for the benchmark harness.

Every figure-level experiment is built from :func:`run_config`, which runs a
single (protocol, durability, workload, knobs) point for the scale's simulated
duration.  Since the scenario-API refactor this module is a thin compatibility
layer: scales live in :mod:`repro.scales`, and building/running goes through
:mod:`repro.scenario` (``run_config(...)`` is exactly
``repro.run(ScenarioSpec(...))``), so the classic helpers and the new facade
cannot diverge.

Absolute throughput numbers are simulator-specific; the quantities to compare
against the paper are the *ratios* between protocols and the *shapes* of the
sweeps, which is what the report printers show.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.cluster import Cluster
from ..cluster.results import RunResult
from ..scales import SCALES, TINY_SCALE, BenchScale, sweep_values
from ..scenario import ScenarioSpec, build_workload
from ..scenario import build as _build_scenario
from ..scenario import run as _run_scenario

__all__ = [
    "BenchScale",
    "SCALES",
    "TINY_SCALE",
    "build_cluster",
    "run_config",
    "build_workload",
    "sweep_values",
]


def _spec(
    protocol: str,
    scale: BenchScale,
    workload: str,
    workload_overrides: Optional[dict],
    config_overrides: dict,
) -> ScenarioSpec:
    return ScenarioSpec(
        protocol=protocol,
        workload=workload,
        scale=scale,
        workload_overrides=workload_overrides or {},
        config_overrides=config_overrides,
    )


def build_cluster(
    protocol: str,
    scale: BenchScale,
    workload: str = "ycsb",
    workload_overrides: Optional[dict] = None,
    **config_overrides,
) -> Cluster:
    """Build (but do not run) the cluster for one configuration point."""
    return _build_scenario(
        _spec(protocol, scale, workload, workload_overrides, config_overrides)
    )


def run_config(
    protocol: str,
    scale: BenchScale,
    workload: str = "ycsb",
    workload_overrides: Optional[dict] = None,
    **config_overrides,
) -> RunResult:
    """Run one configuration point and return its results."""
    return _run_scenario(
        _spec(protocol, scale, workload, workload_overrides, config_overrides)
    )
