"""Shared helpers for the benchmark harness.

Every figure-level experiment is built from :func:`run_config`, which builds a
cluster for one (protocol, durability, workload, knobs) point and runs it for
the scale's simulated duration.  Two scales are provided:

* ``small`` — seconds of wall-clock per point; used by the pytest-benchmark
  suite so the whole harness regenerates every figure in minutes;
* ``paper`` — longer simulated runs and full sweep ranges, closer to the
  paper's operating points (minutes of wall-clock per figure).

Absolute throughput numbers are simulator-specific; the quantities to compare
against the paper are the *ratios* between protocols and the *shapes* of the
sweeps, which is what the report printers show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.cluster import Cluster
from ..cluster.config import SystemConfig
from ..cluster.results import RunResult
from ..workloads.smallbank import SmallbankConfig, SmallbankWorkload
from ..workloads.tatp import TATPConfig, TATPWorkload
from ..workloads.tpcc import TPCCConfig, TPCCWorkload
from ..workloads.ycsb import YCSBConfig, YCSBWorkload

__all__ = [
    "BenchScale",
    "SCALES",
    "TINY_SCALE",
    "build_cluster",
    "run_config",
    "build_workload",
]


@dataclass(frozen=True)
class BenchScale:
    """Run-size preset used by the experiment functions."""

    name: str
    duration_us: float
    warmup_us: float
    workers_per_partition: int
    inflight_per_worker: int
    ycsb_keys_per_partition: int
    tpcc_warehouses_per_partition: int
    tpcc_items: int
    tpcc_customers_per_district: int
    sweep_points: int  # how many points of each sweep to keep


SCALES: dict[str, BenchScale] = {
    "small": BenchScale(
        name="small",
        duration_us=20_000.0,
        warmup_us=5_000.0,
        workers_per_partition=2,
        inflight_per_worker=2,
        ycsb_keys_per_partition=10_000,
        tpcc_warehouses_per_partition=4,
        tpcc_items=200,
        tpcc_customers_per_district=30,
        sweep_points=3,
    ),
    "medium": BenchScale(
        name="medium",
        duration_us=40_000.0,
        warmup_us=10_000.0,
        workers_per_partition=3,
        inflight_per_worker=2,
        ycsb_keys_per_partition=20_000,
        tpcc_warehouses_per_partition=8,
        tpcc_items=500,
        tpcc_customers_per_district=60,
        sweep_points=4,
    ),
    "paper": BenchScale(
        name="paper",
        duration_us=100_000.0,
        warmup_us=20_000.0,
        workers_per_partition=4,
        inflight_per_worker=3,
        ycsb_keys_per_partition=100_000,
        tpcc_warehouses_per_partition=16,
        tpcc_items=2_000,
        tpcc_customers_per_district=200,
        sweep_points=6,
    ),
}


#: Tiny preset for tests and gates: each cell simulates in a fraction of a
#: second.  Deliberately not in :data:`SCALES` so the CLI only offers the
#: figure-quality presets.
TINY_SCALE = BenchScale(
    name="tiny",
    duration_us=6_000.0,
    warmup_us=2_000.0,
    workers_per_partition=1,
    inflight_per_worker=2,
    ycsb_keys_per_partition=2_000,
    tpcc_warehouses_per_partition=2,
    tpcc_items=50,
    tpcc_customers_per_district=10,
    sweep_points=2,
)


def build_workload(scale: BenchScale, workload: str = "ycsb", **overrides):
    """Construct a workload object with the scale's size defaults applied."""
    if workload == "ycsb":
        params = {"keys_per_partition": scale.ycsb_keys_per_partition}
        params.update(overrides)
        return YCSBWorkload(YCSBConfig(**params))
    if workload == "tpcc":
        params = {
            "warehouses_per_partition": scale.tpcc_warehouses_per_partition,
            "items": scale.tpcc_items,
            "customers_per_district": scale.tpcc_customers_per_district,
        }
        params.update(overrides)
        return TPCCWorkload(TPCCConfig(**params))
    if workload == "tatp":
        return TATPWorkload(TATPConfig(**overrides))
    if workload == "smallbank":
        return SmallbankWorkload(SmallbankConfig(**overrides))
    raise ValueError(f"unknown workload {workload!r}")


def build_cluster(
    protocol: str,
    scale: BenchScale,
    workload: str = "ycsb",
    workload_overrides: Optional[dict] = None,
    **config_overrides,
) -> Cluster:
    """Build (but do not run) the cluster for one configuration point.

    Shared by :func:`run_config` and the orchestrator's cell executor so the
    two paths cannot diverge in how they apply scale defaults and overrides.
    """
    config = SystemConfig.for_protocol(
        protocol,
        duration_us=config_overrides.pop("duration_us", scale.duration_us),
        warmup_us=config_overrides.pop("warmup_us", scale.warmup_us),
        workers_per_partition=config_overrides.pop(
            "workers_per_partition", scale.workers_per_partition
        ),
        inflight_per_worker=config_overrides.pop(
            "inflight_per_worker", scale.inflight_per_worker
        ),
        **config_overrides,
    )
    workload_obj = build_workload(scale, workload, **(workload_overrides or {}))
    return Cluster(config, workload_obj)


def run_config(
    protocol: str,
    scale: BenchScale,
    workload: str = "ycsb",
    workload_overrides: Optional[dict] = None,
    **config_overrides,
) -> RunResult:
    """Run one configuration point and return its results."""
    cluster = build_cluster(
        protocol, scale, workload, workload_overrides, **config_overrides
    )
    return cluster.run()


def sweep_values(values: list, scale: BenchScale) -> list:
    """Thin a sweep down to the scale's number of points (keeping endpoints)."""
    if len(values) <= scale.sweep_points:
        return list(values)
    if scale.sweep_points == 1:
        return [values[-1]]
    step = (len(values) - 1) / (scale.sweep_points - 1)
    indices = sorted({round(i * step) for i in range(scale.sweep_points)})
    return [values[i] for i in indices]
