"""Benchmark harness regenerating every figure of the paper's evaluation."""

from .experiments import ALL_EXPERIMENTS, FIGURES, FigureSpec
from .orchestrator import Cell, ResultCache, SweepOutcome, make_cell, run_cells
from .runner import SCALES, BenchScale, build_cluster, build_workload, run_config

__all__ = [
    "ALL_EXPERIMENTS",
    "FIGURES",
    "FigureSpec",
    "Cell",
    "ResultCache",
    "SweepOutcome",
    "make_cell",
    "run_cells",
    "SCALES",
    "BenchScale",
    "build_cluster",
    "build_workload",
    "run_config",
]
