"""Benchmark harness regenerating every figure of the paper's evaluation."""

from .experiments import ALL_EXPERIMENTS
from .runner import SCALES, BenchScale, build_workload, run_config

__all__ = ["ALL_EXPERIMENTS", "SCALES", "BenchScale", "build_workload", "run_config"]
