"""Parallel figure-sweep orchestrator with a resumable on-disk result cache.

Regenerating the paper's figures decomposes into independent *cells*: one
fixed-seed simulation per (protocol, workload, scale, knobs) point.  This
module turns each cell into a declarative :class:`Cell` spec, executes the
whole set across CPU cores with a :class:`~concurrent.futures.ProcessPoolExecutor`,
and memoizes every cell's :class:`~repro.cluster.results.RunResult` in an
on-disk JSON cache keyed by a stable hash of the cell spec plus the substrate
version.  Interrupted or repeated sweeps therefore resume: only cells whose
spec (or the simulator itself) changed are recomputed.

Determinism contract
--------------------

A cell produces **bit-identical** commit/abort counts whether it runs inline
(``jobs=1``), in a pool worker, or comes back from the cache.  Two properties
make that hold:

* all simulation seeding goes through ``repro.sim.randgen.stable_hash``
  (crc32-based), so a fixed-seed run is reproducible across processes and
  interpreter restarts (see "Determinism ground rules" in ROADMAP.md);
* every result — including one computed inline — is normalized through the
  JSON round-trip (:meth:`RunResult.to_json_dict` /
  :meth:`RunResult.from_json_dict`) before it is handed to a renderer, so the
  three execution paths cannot diverge even in float formatting.

Cache layout
------------

``<cache-dir>/<sha256-prefix>.json`` — one file per cell, containing the
schema version, the substrate version, the cell spec (for human inspection
and integrity checking) and the serialized result.  Files are written
atomically (tmp + rename) so an interrupted sweep never leaves a corrupt
entry; unreadable or mismatched entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from .. import __version__ as _REPRO_VERSION
from ..cluster.results import RunResult
from ..scales import BenchScale
from ..scenario import ScenarioSpec
from ..scenario import run as _run_scenario

__all__ = [
    "Cell",
    "CacheGcReport",
    "NullCache",
    "ResultCache",
    "SweepOutcome",
    "SUBSTRATE_VERSION",
    "CACHE_SCHEMA_VERSION",
    "collect_cache_garbage",
    "execute_cell",
    "execute_cell_json",
    "make_cell",
    "run_cached_cell",
    "run_cells",
]

#: Version of the simulation substrate baked into every cache key.  Bump the
#: package version (or wipe the cache) when simulation semantics change; the
#: bench gate (``scripts/bench_gate.py --check``) hard-fails on unintentional
#: semantic drift, so a stale cache and a drifted substrate cannot silently
#: coexist on CI.
SUBSTRATE_VERSION = _REPRO_VERSION

#: Version of the on-disk cache file format itself.  v6: spec JSON can carry
#: a geo ``topology`` (omitted for flat-network specs, whose cache keys are
#: therefore unchanged) and fault-run result documents carry a windowed
#: ``timeline`` (degradation/recovery metrics); stale v5 caches degrade to
#: misses.  v5: result documents
#: from runs past ``repro.sim.stats.SKETCH_THRESHOLD`` samples store a
#: bounded-size ``latency_sketch`` instead of raw ``latency_samples`` (and are
#: streamed to disk incrementally), so entries no longer grow with transaction
#: count; stale v4 caches degrade to misses.  v4: spec JSON can carry
#: an open-loop ``arrival`` process (omitted for closed-loop specs, whose
#: cache keys are therefore unchanged); stale v3 caches degrade to misses.
#: v3: spec JSON grew the declarative ``faults`` plan (and workload mixes),
#: so fault schedules and mix weights are part of every cell's cache
#: identity.  v2: cells carry a ScenarioSpec and cache keys hash its
#: canonical JSON.
CACHE_SCHEMA_VERSION = 6


@dataclass(frozen=True)
class Cell:
    """One independent simulation point of a figure sweep.

    A thin presentation wrapper: ``figure`` and ``key`` identify the cell to
    its renderer, while ``spec`` — a validated
    :class:`~repro.scenario.ScenarioSpec` — is the physics of the run and the
    sole input to its cache key.  Two cells that differ only in
    ``figure``/``key`` share one simulation.
    """

    figure: str
    key: str
    spec: ScenarioSpec

    @property
    def cell_id(self) -> str:
        return f"{self.figure}/{self.key}"

    # Convenience accessors kept from the pre-spec Cell shape.
    @property
    def protocol(self) -> str:
        return self.spec.protocol

    @property
    def workload(self) -> str:
        return self.spec.workload

    @property
    def scale(self) -> BenchScale:
        return self.spec.scale

    def cache_key(self) -> str:
        """Stable content hash of the spec's canonical JSON + substrate version."""
        payload = (
            '{"spec":' + self.spec.canonical_json()
            + ',"substrate":' + json.dumps(SUBSTRATE_VERSION) + "}"
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


def make_cell(
    figure: str,
    key: str,
    protocol: str,
    scale: BenchScale,
    workload: str = "ycsb",
    workload_overrides: Optional[dict] = None,
    faults=None,
    arrival=None,
    topology=None,
    durability_message_delay: Optional[tuple] = None,
    network_extra_delay_to: Optional[tuple] = None,
    **config_overrides,
) -> Cell:
    """Convenience constructor mirroring :func:`repro.bench.runner.run_config`.

    Spec validation runs here — a typo'd protocol, workload, override key,
    fault kind or mix component fails while the figure is being *planned*,
    before anything simulates.
    """
    return Cell(
        figure=figure,
        key=key,
        spec=ScenarioSpec(
            protocol=protocol,
            workload=workload,
            scale=scale,
            workload_overrides=workload_overrides or {},
            config_overrides=config_overrides,
            faults=faults,
            arrival=arrival,
            topology=topology,
            durability_message_delay=durability_message_delay,
            network_extra_delay_to=network_extra_delay_to,
        ),
    )


def execute_cell(cell: Cell, profile_dir: Optional[str] = None) -> RunResult:
    """Run one cell's simulation to completion (in the current process).

    With ``profile_dir`` set, the run executes under :mod:`cProfile` and the
    raw stats are dumped to ``<profile_dir>/<figure>-<key>-<hash>.pstats``
    (loadable with ``pstats.Stats`` or snakeviz) — the ``--profile`` flag of
    ``python -m repro.bench`` plumbs through here for both inline and pooled
    execution.
    """
    if profile_dir is None:
        return _run_scenario(cell.spec)
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = _run_scenario(cell.spec)
    finally:
        profiler.disable()
    profiler.dump_stats(_profile_path(profile_dir, cell))
    return result


def _profile_path(profile_dir: str, cell: Cell) -> str:
    directory = Path(profile_dir)
    directory.mkdir(parents=True, exist_ok=True)
    safe_key = "".join(
        ch if ch.isalnum() or ch in "._-" else "_" for ch in cell.key
    )
    return str(directory / f"{cell.figure}-{safe_key}-{cell.cache_key()[:8]}.pstats")


def execute_cell_json(cell: Cell, profile_dir: Optional[str] = None) -> dict:
    """Run one cell and return its result's lossless JSON dict.

    The pool-worker entry point of :func:`run_cells` and of the campaign
    executor (:mod:`repro.campaign.executor`): the JSON form crosses the
    process boundary, so pooled results are normalized exactly like cached
    ones.
    """
    return execute_cell(cell, profile_dir=profile_dir).to_json_dict()


# Kept under the historical private name for pickling compatibility with
# in-flight pools started by older call sites.
_pool_execute = execute_cell_json


def run_cached_cell(cell: Cell, cache, profile_dir: Optional[str] = None) -> RunResult:
    """Execute one cell inline, persist it, and return the normalized result.

    The single execute-and-store step shared by the inline path of
    :func:`run_cells` and the campaign executor: the result is written to
    ``cache`` atomically and handed back *through the JSON round trip*, so an
    inline execution is indistinguishable from a cache hit or a pool result.
    """
    result_json = execute_cell(cell, profile_dir=profile_dir).to_json_dict()
    cache.put(cell, result_json)
    return RunResult.from_json_dict(result_json)


class ResultCache:
    """On-disk JSON memo of cell results, keyed by :meth:`Cell.cache_key`."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path_for(self, cache_key: str) -> Path:
        return self.root / f"{cache_key}.json"

    def load_entry(self, path) -> Optional[dict]:
        """Parse one on-disk entry; ``None`` for corrupt or version-skewed files.

        The shared validity check behind :meth:`get`, :meth:`contains_key`
        and :func:`collect_cache_garbage`: an entry counts only when it
        parses, carries the current schema and substrate versions, and has a
        result payload.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if entry.get("substrate_version") != SUBSTRATE_VERSION:
            return None
        if "result" not in entry:
            return None
        return entry

    def get_by_key(self, cache_key: str) -> Optional[RunResult]:
        """The cached result stored under ``cache_key``, or ``None`` on a miss.

        Corrupt, unreadable or schema-mismatched entries count as misses —
        an interrupted or version-skewed cache degrades to recomputation,
        never to a crash or a wrong figure.  Campaign executors address the
        cache by the manifest's precomputed content keys through here.
        """
        entry = self.load_entry(self.path_for(cache_key))
        if entry is None:
            return None
        try:
            return RunResult.from_json_dict(entry["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def contains_key(self, cache_key: str) -> bool:
        """Whether a *valid* entry exists for ``cache_key`` (campaign status)."""
        return self.load_entry(self.path_for(cache_key)) is not None

    def get(self, cell: Cell) -> Optional[RunResult]:
        """Return the cached result for ``cell``, or ``None`` on a miss."""
        return self.get_by_key(cell.cache_key())

    def put(self, cell: Cell, result_json: dict) -> None:
        """Atomically persist one cell's serialized result.

        Large results are streamed, not materialized: ``json.dump`` with
        keyword options takes the chunked ``iterencode`` path, so the
        document is written to the tmp file incrementally instead of being
        built as one in-memory string.  (Result documents are also bounded
        now — past ``SKETCH_THRESHOLD`` samples the metrics serialize a
        fixed-size ``latency_sketch`` rather than every raw sample.)
        """
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "substrate_version": SUBSTRATE_VERSION,
            "spec": cell.spec.to_json_dict(),
            "result": result_json,
        }
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp_path, self.path_for(cell.cache_key()))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise


class NullCache:
    """Cache stand-in that never hits and never stores (``--no-cache``)."""

    def get(self, cell: Cell) -> Optional[RunResult]:
        return None

    def put(self, cell: Cell, result_json: dict) -> None:
        pass


@dataclass
class SweepOutcome:
    """Results of one orchestrated sweep, plus execution accounting."""

    results: dict = field(default_factory=dict)  # Cell -> RunResult
    executed: int = 0       # simulations actually run this sweep
    cache_hits: int = 0     # unique cells served from the on-disk cache
    deduplicated: int = 0   # cells that shared another cell's simulation

    def by_key(self, cells: Iterable[Cell]) -> dict:
        """Results for ``cells`` keyed by ``cell.key`` (a renderer's view)."""
        return {cell.key: self.results[cell] for cell in cells}


def run_cells(
    cells: Sequence[Cell],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    profile_dir: Optional[str] = None,
) -> SweepOutcome:
    """Execute every cell, using the cache and up to ``jobs`` processes.

    Identical specs (same cache key) are simulated once and shared.  With
    ``jobs <= 1`` everything runs inline in this process; either way each
    result is normalized through the JSON round-trip so inline, pooled and
    cached executions are indistinguishable.  ``profile_dir`` turns on
    per-cell :mod:`cProfile` dumps (see :func:`execute_cell`) — cached cells
    produce no profile because nothing simulates.
    """
    cache = cache if cache is not None else NullCache()
    notify = progress or (lambda message: None)

    # Deduplicate by cache key, preserving plan order.
    unique: dict[str, list[Cell]] = {}
    for cell in cells:
        unique.setdefault(cell.cache_key(), []).append(cell)

    outcome = SweepOutcome()
    outcome.deduplicated = len(cells) - len(unique)
    resolved: dict[str, RunResult] = {}

    pending: list[tuple[str, Cell]] = []
    for cache_key, aliases in unique.items():
        cached = cache.get(aliases[0])
        if cached is not None:
            resolved[cache_key] = cached
            outcome.cache_hits += 1
            notify(f"cache hit  {aliases[0].cell_id}")
        else:
            pending.append((cache_key, aliases[0]))

    if pending and jobs <= 1:
        for cache_key, cell in pending:
            notify(f"running    {cell.cell_id}")
            resolved[cache_key] = run_cached_cell(cell, cache,
                                                  profile_dir=profile_dir)
            outcome.executed += 1
    elif pending:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(execute_cell_json, cell, profile_dir): (cache_key, cell)
                for cache_key, cell in pending
            }
            notify(
                f"running    {len(pending)} cells on up to {jobs} worker processes"
            )
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    cache_key, cell = futures[future]
                    result_json = future.result()
                    cache.put(cell, result_json)
                    resolved[cache_key] = RunResult.from_json_dict(result_json)
                    outcome.executed += 1
                    notify(f"finished   {cell.cell_id}")

    for cache_key, aliases in unique.items():
        for cell in aliases:
            outcome.results[cell] = resolved[cache_key]
    return outcome


# ---------------------------------------------------------------------------
# Cache garbage collection
# ---------------------------------------------------------------------------

@dataclass
class CacheGcReport:
    """What one :func:`collect_cache_garbage` pass found (and removed)."""

    root: str = ""
    dry_run: bool = False
    kept: int = 0                  # valid entries left in place
    stale_entries: int = 0         # schema/substrate-skewed or corrupt files
    orphaned_tmp: int = 0          # abandoned .tmp-* files past the age cutoff
    bytes_reclaimed: int = 0       # total size of everything removed

    def describe(self) -> str:
        action = "would reclaim" if self.dry_run else "reclaimed"
        return (
            f"{self.root}: kept {self.kept} entries; {action} "
            f"{self.bytes_reclaimed:,} bytes "
            f"({self.stale_entries} stale/corrupt entries, "
            f"{self.orphaned_tmp} orphaned tmp files)"
        )


def collect_cache_garbage(root, tmp_age_s: float = 3600.0,
                          dry_run: bool = False) -> CacheGcReport:
    """Prune version-skewed, corrupt and orphaned files from a result cache.

    Needed hygiene once campaigns share one cache directory across hosts and
    substrate upgrades: every version skew turns the previous entries into
    dead weight that ``get`` already ignores but nothing ever deletes.  Removes

    * entries whose schema or substrate version no longer matches (or that
      do not parse) — exactly the files :meth:`ResultCache.get` treats as
      misses, so removal can never change what a sweep computes;
    * ``.tmp-*`` spill files older than ``tmp_age_s`` seconds — debris of
      executors killed mid-:meth:`ResultCache.put` (younger ones are left
      alone: they may belong to a write in flight right now).

    With ``dry_run`` nothing is deleted; the report counts what would go.
    Concurrent executors are safe: deleting an invalid entry or an abandoned
    tmp file can at worst race another GC's unlink, which is tolerated.
    """
    import time

    cache = ResultCache(root)
    report = CacheGcReport(root=str(cache.root), dry_run=dry_run)
    if not cache.root.is_dir():
        return report
    now = time.time()
    for path in sorted(cache.root.iterdir()):
        if not path.is_file():
            continue
        remove = False
        if path.name.startswith(".tmp-"):
            try:
                if now - path.stat().st_mtime >= tmp_age_s:
                    remove = True
                    report.orphaned_tmp += 1
            except OSError:
                continue
        elif path.suffix == ".json":
            if cache.load_entry(path) is None:
                remove = True
                report.stale_entries += 1
            else:
                report.kept += 1
        else:
            continue
        if not remove:
            continue
        try:
            size = path.stat().st_size
            if not dry_run:
                path.unlink()
            report.bytes_reclaimed += size
        except OSError:
            # Another GC (or the owning writer) got there first; fine.
            pass
    return report
