"""Plain-text report printers for the benchmark harness.

Each experiment returns a dictionary of rows/series; these helpers turn them
into aligned tables on stdout, always showing the paper's headline number next
to the measured one so the shape comparison is immediate.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

__all__ = [
    "confidence_interval_95",
    "format_mean_ci",
    "format_ratio",
    "print_header",
    "print_series",
    "print_table",
    "sample_mean_std",
    "t_critical_95",
]


def print_header(title: str, paper_note: str = "") -> None:
    print()
    print("=" * 78)
    print(title)
    if paper_note:
        print(f"  paper: {paper_note}")
    print("=" * 78)


def format_ratio(value: float) -> str:
    return f"{value:.2f}x"


def _format_cell(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def print_table(columns: list[str], rows: Iterable[Iterable], indent: int = 2) -> None:
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    pad = " " * indent
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    print(pad + header)
    print(pad + "-" * len(header))
    for row in rows:
        print(pad + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def print_series(name: str, xs: list, ys: list, unit: str = "") -> None:
    print(f"  {name} {unit}".rstrip())
    print_table(["x", name], list(zip(xs, ys)), indent=4)


# ---------------------------------------------------------------------------
# Seed-repetition statistics (campaign reports)
# ---------------------------------------------------------------------------
#
# Campaigns report each run-table row as mean ± 95% confidence interval over
# its seed repetitions.  Reps are small (3-10 is typical), so the normal
# z = 1.96 would understate the interval badly; the Student-t critical values
# below are the standard two-sided 95% table.  No scipy in the image — the
# table covers every df a campaign will realistically see and clamps to its
# last row (df = 120, 1.980) beyond it, which upper-bounds t everywhere the
# table doesn't reach (the normal 1.96 would be slightly narrow, e.g.
# t(121) ≈ 1.9798).

_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    if df in _T95:
        return _T95[df]
    # Off-table df take the next tabulated row below — slightly conservative
    # (wider interval), never optimistic; past 120 that's the last row's
    # 1.980, which still bounds t from above (unlike the normal 1.96).
    for tabulated in (120, 60, 40, 30):
        if df > tabulated:
            return _T95[tabulated]
    return _T95[30]  # unreachable: df 1..30 are all tabulated


def sample_mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and sample (n-1) standard deviation; std is 0.0 for n < 2."""
    n = len(values)
    if n == 0:
        raise ValueError("no values to summarize")
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance)


def confidence_interval_95(values: Sequence[float]) -> tuple[float, float]:
    """``(mean, half_width)`` of the 95% Student-t CI over ``values``.

    The half-width is 0.0 for a single value (no dispersion information —
    a campaign with ``seed_reps=1`` reports bare means), so callers can
    render ``mean ± half`` unconditionally.
    """
    mean, std = sample_mean_std(values)
    n = len(values)
    if n < 2 or std == 0.0:
        return mean, 0.0
    return mean, t_critical_95(n - 1) * std / math.sqrt(n)


def format_mean_ci(mean: float, half_width: float,
                   precision: Optional[int] = None) -> str:
    """``"12.3 ± 0.4"`` — matched precision for the mean and its interval.

    Without an explicit ``precision`` the number of decimals adapts to the
    magnitude the same way the table printer does, so campaign Markdown and
    the plain-text tables read alike.
    """
    if precision is None:
        magnitude = max(abs(mean), half_width)
        precision = 0 if magnitude >= 1000 else (1 if magnitude >= 10 else 3)
    if half_width == 0.0:
        return f"{mean:.{precision}f}"
    return f"{mean:.{precision}f} ± {half_width:.{precision}f}"
