"""Plain-text report printers for the benchmark harness.

Each experiment returns a dictionary of rows/series; these helpers turn them
into aligned tables on stdout, always showing the paper's headline number next
to the measured one so the shape comparison is immediate.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["print_table", "print_header", "format_ratio", "print_series"]


def print_header(title: str, paper_note: str = "") -> None:
    print()
    print("=" * 78)
    print(title)
    if paper_note:
        print(f"  paper: {paper_note}")
    print("=" * 78)


def format_ratio(value: float) -> str:
    return f"{value:.2f}x"


def _format_cell(value) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def print_table(columns: list[str], rows: Iterable[Iterable], indent: int = 2) -> None:
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    pad = " " * indent
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    print(pad + header)
    print(pad + "-" * len(header))
    for row in rows:
        print(pad + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def print_series(name: str, xs: list, ys: list, unit: str = "") -> None:
    print(f"  {name} {unit}".rstrip())
    print_table(["x", name], list(zip(xs, ys)), indent=4)
