"""Open-loop traffic engine: arrival processes as a first-class scenario axis.

Every run used to be *closed-loop*: a fixed worker pool issues transactions
back-to-back, so offered load is whatever the system sustains and latency
never includes queueing.  An :class:`ArrivalSpec` turns the transaction
sources into schedulable **arrival processes** instead — the open-loop
methodology of serving benchmarks: sweep offered load, report what happens to
throughput and the latency tail at 0.5x / 0.8x / 1.0x / 1.2x of saturation::

    spec = repro.ScenarioSpec(
        protocol="primo", workload="ycsb", scale="small",
        arrival={"kind": "poisson", "rate_tps": 150_000},
    )

Arrival kinds are registered through :func:`repro.registry.register_arrival`
exactly like protocols and workloads; the built-ins are ``closed`` (the
default — bit-identical to the historical worker loop, with an optional
``think_time_us`` pause turning it into the classic N-interactive-clients
model), ``poisson`` (memoryless arrivals), ``deterministic`` (evenly
spaced), and ``bursty`` (a flash crowd: a mid-run rate burst with an
optional hot-key skew shift).
``component_rates`` shapes a :class:`~repro.workloads.mixed.MixedWorkload`
per component — each named component becomes its own arrival stream with its
own rate.

Runtime shape (see :func:`start_open_loop`): per partition, arrival streams
draw transactions from the workload at their arrival instants and push them
into a bounded :class:`AdmissionQueue`; the partition's service fibers (the
same count the closed loop would run) drain the queue through the ordinary
protocol/durability path.  Latency is measured from *arrival* time, so every
reported percentile includes queueing delay, and arrivals beyond a full queue
are dropped and counted (``arrivals_dropped``) — the cluster sheds load
instead of queueing unboundedly once offered load exceeds capacity.

Determinism: each stream owns one gap RNG (derived from the run seed, the
arrival kind, the stream label and the partition via ``stable_hash``) and one
transaction source whose ``next()`` is drawn exactly once per arrival, at
enqueue time, in arrival order — the draw-order contract documented on
:class:`repro.workloads.base.TxnSource`.  Arrival events are plain engine
timeouts, so they ride both scheduler kernels (py and C) through the foreign
-event protocol unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Mapping, Optional

from .registry import ARRIVAL_REGISTRY, register_arrival, suggestion_hint
from .sim.randgen import DeterministicRandom, derive_seed, stable_hash

if TYPE_CHECKING:  # pragma: no cover
    from .cluster.cluster import Cluster
    from .workloads.base import TxnSource

__all__ = [
    "AdmissionQueue",
    "ArrivalContext",
    "ArrivalSpec",
    "CLOSED",
    "arrival",
    "start_open_loop",
]

#: The default arrival kind: the historical closed-loop worker pool.
CLOSED = "closed"

#: ArrivalSpec field names; JSON documents flatten the kind's parameters next
#: to these (mirroring the flat :class:`repro.faults.FaultEvent` form).
_SPEC_FIELDS = ("kind", "rate_tps", "component_rates")


def _normalize_param(name: str, value):
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        # Ints and floats must hash/serialize identically (4 vs 4.0), or equal
        # specs would produce different orchestrator cache keys.
        return float(value)
    raise TypeError(
        f"arrival parameter {name!r} must be a scalar, got {type(value).__name__}"
    )


def _normalize_component_rates(rates) -> tuple:
    if not rates:
        return ()
    if isinstance(rates, Mapping):
        rates = tuple(rates.items())
    pairs = []
    seen = set()
    for entry in rates:
        pair = tuple(entry)
        if len(pair) != 2:
            raise ValueError(
                f"component_rates entries must be (component, rate_tps) pairs, "
                f"got {entry!r}"
            )
        name, rate = pair
        if name in seen:
            raise ValueError(f"component rate for {name!r} listed twice")
        seen.add(name)
        rate = float(rate)
        if not rate > 0.0:
            raise ValueError(
                f"component rate for {name!r} must be a positive tps, got {rate}"
            )
        pairs.append((name, rate))
    return tuple(sorted(pairs))


@dataclass(frozen=True)
class ArrivalSpec:
    """One traffic shape: a registered arrival ``kind`` plus its offered load.

    ``rate_tps`` is the *aggregate* offered load in transactions per simulated
    second, split evenly across partitions.  ``params`` holds the kind's
    optional parameters as sorted ``(name, value)`` pairs (JSON documents and
    the :func:`arrival` helper spell them as plain keywords);
    ``component_rates`` replaces ``rate_tps`` for mixed workloads with one
    ``(component, rate_tps)`` stream per named component.  Validation is
    eager: an unknown kind or parameter, a missing rate, or an out-of-range
    parameter value raises at construction with a did-you-mean hint.

    ``kind="closed"`` is the default and takes no rate or parameters;
    :meth:`coerce` normalizes it to ``None`` so an explicitly-closed scenario
    is *identical* — results, JSON, orchestrator cache key — to a legacy one.
    """

    kind: str = CLOSED
    rate_tps: Optional[float] = None
    params: tuple = ()
    component_rates: tuple = ()

    def __post_init__(self) -> None:
        def set_field(name: str, value) -> None:
            object.__setattr__(self, name, value)

        entry = ARRIVAL_REGISTRY.entry(self.kind)
        allowed = entry.metadata.get("params", {})
        params = dict(self.params or ())
        for name in params:
            if name not in allowed:
                raise ValueError(
                    f"unknown parameter {name!r} for arrival process "
                    f"{self.kind!r}{suggestion_hint(str(name), tuple(allowed))}; "
                    f"expected: {', '.join(allowed) or '<none>'}"
                )
        set_field(
            "params",
            tuple((name, _normalize_param(name, params[name]))
                  for name in sorted(params)),
        )
        set_field("component_rates", _normalize_component_rates(self.component_rates))

        if not entry.metadata.get("open_loop", True):
            if self.rate_tps is not None or self.component_rates:
                raise ValueError(
                    f"arrival process {self.kind!r} is closed-loop and takes "
                    "no rate_tps or component_rates (its only knob is the "
                    "registered parameters, e.g. think_time_us)"
                )
            check = getattr(entry.obj, "check_params", None)
            if check is not None:
                check(self.effective_params())
            return
        if self.rate_tps is not None:
            if self.component_rates:
                raise ValueError(
                    "give either an aggregate rate_tps or per-component "
                    "component_rates, not both"
                )
            rate = float(self.rate_tps)
            if not rate > 0.0:
                raise ValueError(f"arrival rate_tps must be positive, got {rate}")
            set_field("rate_tps", rate)
        elif not self.component_rates:
            raise ValueError(
                f"open-loop arrival process {self.kind!r} needs an offered "
                "load: rate_tps or component_rates"
            )
        check = getattr(entry.obj, "check_params", None)
        if check is not None:
            check(self.effective_params())

    # -- registry-backed behaviour ------------------------------------------------
    @property
    def open_loop(self) -> bool:
        return bool(ARRIVAL_REGISTRY.entry(self.kind).metadata.get("open_loop", True))

    def effective_params(self) -> dict:
        """The kind's registered defaults overlaid with this spec's params."""
        merged = dict(ARRIVAL_REGISTRY.entry(self.kind).metadata.get("params", {}))
        merged.update(dict(self.params))
        return merged

    # -- JSON round trip ---------------------------------------------------------
    def to_json_dict(self) -> dict:
        """Flat JSON form: parameters sit next to the spec fields."""
        data: dict = {"kind": self.kind}
        if self.rate_tps is not None:
            data["rate_tps"] = self.rate_tps
        if self.component_rates:
            data["component_rates"] = dict(self.component_rates)
        data.update(dict(self.params))
        return data

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "ArrivalSpec":
        if not isinstance(data, Mapping):
            raise TypeError(
                f"arrival must be a JSON object, got {type(data).__name__}"
            )
        if "kind" not in data:
            raise ValueError("arrival is missing the required 'kind' field")
        fields_ = {name: data[name] for name in _SPEC_FIELDS if name in data}
        params = {name: value for name, value in data.items()
                  if name not in _SPEC_FIELDS}
        return cls(params=tuple(sorted(params.items())), **fields_)

    @classmethod
    def coerce(cls, value) -> Optional["ArrivalSpec"]:
        """``None`` | spec | kind name | JSON dict -> spec (or ``None``).

        The *trivial* closed loop normalizes to ``None``: ``arrival="closed"``
        (and an explicit ``think_time_us=0``) builds byte-identical clusters
        *and* serializes identically to ``arrival=None``, so legacy scenarios
        keep their orchestrator cache keys.  A closed loop with a positive
        think time is a real spec — it changes the simulated traffic and
        therefore the cache identity.
        """
        if value is None:
            return None
        if isinstance(value, cls):
            spec = value
        elif isinstance(value, str):
            spec = cls(kind=value)
        elif isinstance(value, Mapping):
            spec = cls.from_json_dict(value)
        else:
            raise TypeError(
                f"arrival must be an ArrivalSpec, a kind name, or a JSON "
                f"object, got {type(value).__name__}"
            )
        if spec.open_loop or spec.kind != CLOSED:
            return spec
        return spec if ClosedLoop.think_time_us(spec) > 0.0 else None


def arrival(kind: str, rate_tps: Optional[float] = None, *,
            component_rates=(), **params) -> ArrivalSpec:
    """Ergonomic :class:`ArrivalSpec` constructor with keyword parameters::

        arrival("bursty", 100_000, burst_factor=6.0, hot_theta=0.95)
    """
    return ArrivalSpec(kind=kind, rate_tps=rate_tps,
                       component_rates=component_rates,
                       params=tuple(sorted(params.items())))


# ---------------------------------------------------------------------------
# Built-in arrival kinds
# ---------------------------------------------------------------------------

class ArrivalContext:
    """Everything a kind's ``gaps`` generator can see about one stream.

    ``interval_us`` is the stream's mean inter-arrival gap on *this* partition
    (the aggregate rate split evenly); ``total_us`` is warmup plus measured
    duration; ``rng`` is the stream's own gap RNG; ``source`` is the stream's
    transaction source (for mid-run skew shifts via ``set_hot_skew``).
    """

    __slots__ = ("partition_id", "label", "interval_us", "total_us",
                 "rng", "source", "params", "_env")

    def __init__(self, env, partition_id: int, label: str, interval_us: float,
                 total_us: float, rng: DeterministicRandom,
                 source: "TxnSource", params: dict):
        self._env = env
        self.partition_id = partition_id
        self.label = label
        self.interval_us = interval_us
        self.total_us = total_us
        self.rng = rng
        self.source = source
        self.params = params

    def now(self) -> float:
        return self._env._now


@register_arrival(
    CLOSED, open_loop=False,
    params={"think_time_us": 0.0},
    description="fixed worker pool issuing transactions back-to-back (the "
                "default); think_time_us > 0 adds the classic N-clients "
                "interactive pause between a response and the next request",
)
class ClosedLoop:
    """The closed loop runs through the historical worker path.

    With the default ``think_time_us=0`` this is exactly the legacy
    back-to-back worker pool (:meth:`ArrivalSpec.coerce` normalizes the spec
    to ``None``, so results, JSON and orchestrator cache keys are untouched).
    A positive think time turns each worker fiber into the classic
    interactive-client model: after a transaction completes, the client
    "thinks" for the fixed pause before issuing its next request, so offered
    load scales with the client count *and* per-client latency
    (N/(R + Z) in operational-law terms).
    """

    @staticmethod
    def check_params(params: dict) -> None:
        think = params["think_time_us"]
        if (isinstance(think, bool) or not isinstance(think, (int, float))
                or not think >= 0.0):
            raise ValueError(
                f"think_time_us must be a non-negative duration in simulated "
                f"microseconds, got {think!r}"
            )

    @staticmethod
    def think_time_us(spec: "ArrivalSpec") -> float:
        return float(spec.effective_params()["think_time_us"])


@register_arrival(
    "poisson",
    description="memoryless open-loop arrivals: exponential gaps at rate_tps",
)
class PoissonArrival:
    @staticmethod
    def gaps(ctx: ArrivalContext) -> Generator[float, None, None]:
        exponential = ctx.rng.exponential
        mean = ctx.interval_us
        while True:
            yield exponential(mean)


@register_arrival(
    "deterministic",
    description="evenly spaced open-loop arrivals at exactly rate_tps",
)
class DeterministicArrival:
    @staticmethod
    def gaps(ctx: ArrivalContext) -> Generator[float, None, None]:
        interval = ctx.interval_us
        while True:
            yield interval


@register_arrival(
    "bursty",
    params={"burst_start_frac": 0.4, "burst_end_frac": 0.7,
            "burst_factor": 4.0, "hot_theta": None},
    description="flash crowd: Poisson base load with a burst_factor rate "
                "spike (and optional hot_theta key-skew shift) between "
                "burst_start_frac and burst_end_frac of the run",
)
class BurstyArrival:
    @staticmethod
    def check_params(params: dict) -> None:
        start = params["burst_start_frac"]
        end = params["burst_end_frac"]
        if not 0.0 <= start < end <= 1.0:
            raise ValueError(
                f"bursty window must satisfy 0 <= burst_start_frac < "
                f"burst_end_frac <= 1, got [{start}, {end}]"
            )
        if not params["burst_factor"] > 0.0:
            raise ValueError(
                f"burst_factor must be positive, got {params['burst_factor']}"
            )
        hot = params["hot_theta"]
        if hot is not None and not 0.0 <= hot < 1.0:
            raise ValueError(f"hot_theta must be in [0, 1), got {hot}")

    @staticmethod
    def gaps(ctx: ArrivalContext) -> Generator[float, None, None]:
        params = ctx.params
        base = ctx.interval_us
        burst = base / params["burst_factor"]
        start = params["burst_start_frac"] * ctx.total_us
        end = params["burst_end_frac"] * ctx.total_us
        hot_theta = params["hot_theta"]
        exponential = ctx.rng.exponential
        shifted = False
        while True:
            in_burst = start <= ctx.now() < end
            if in_burst and not shifted:
                shifted = True
                if hot_theta is not None:
                    ctx.source.set_hot_skew(hot_theta)
            elif shifted and not in_burst:
                shifted = False
                if hot_theta is not None:
                    ctx.source.set_hot_skew(None)
            yield exponential(burst if in_burst else base)


# ---------------------------------------------------------------------------
# Open-loop runtime
# ---------------------------------------------------------------------------

class AdmissionQueue:
    """Bounded FIFO between a partition's arrival streams and service fibers.

    ``offer`` never blocks: past ``capacity`` the arrival is counted dropped
    (load shedding), so a sustained overload shows up as drops plus a full
    queue instead of unbounded memory growth.  ``take``/``wait`` give service
    fibers a lost-wakeup-free dequeue: waiter events are appended before
    control returns to the engine and woken one-per-offer in FIFO order, so
    dequeue order is deterministic under both scheduler kernels.
    """

    __slots__ = ("_env", "capacity", "_items", "_waiters",
                 "offered", "dropped", "peak_depth")

    def __init__(self, env, capacity: int):
        self._env = env
        self.capacity = capacity
        self._items: deque = deque()
        self._waiters: deque = deque()
        self.offered = 0
        self.dropped = 0
        self.peak_depth = 0

    def offer(self, arrival_us: float, spec) -> bool:
        """Enqueue one arrival; ``False`` (and a drop count) when full."""
        self.offered += 1
        items = self._items
        if len(items) >= self.capacity:
            self.dropped += 1
            return False
        items.append((arrival_us, spec))
        if len(items) > self.peak_depth:
            self.peak_depth = len(items)
        if self._waiters:
            self._waiters.popleft().succeed()
        return True

    def take(self):
        """The oldest queued ``(arrival_us, spec)``, or ``None`` when empty."""
        items = self._items
        return items.popleft() if items else None

    def wait(self):
        """An event triggered when the next arrival is offered."""
        event = self._env.event()
        self._waiters.append(event)
        return event

    @property
    def depth(self) -> int:
        return len(self._items)


def _arrival_loop(cluster: "Cluster", queue: AdmissionQueue,
                  source: "TxnSource", gaps) -> Generator:
    """One arrival stream: draw a gap, sleep, draw a transaction, enqueue."""
    env = cluster.env
    timeout = env.timeout
    next_spec = source.next
    offer = queue.offer
    for gap_us in gaps:
        if gap_us > 0:
            yield timeout(gap_us)
        if cluster.stopped:
            return
        offer(env._now, next_spec())


def _partition_streams(cluster: "Cluster", spec: ArrivalSpec, partition_id: int):
    """The ``(label, source, aggregate_rate_tps)`` streams of one partition."""
    if not spec.component_rates:
        return [("all", cluster.new_txn_source(partition_id, 0), spec.rate_tps)]
    workload = cluster.workload
    component_source = getattr(workload, "component_source", None)
    if component_source is None:
        raise ValueError(
            f"arrival component_rates need a mixed workload with named "
            f"components; {workload.name!r} has none"
        )
    return [
        (name, component_source(cluster, partition_id, 0, name), rate)
        for name, rate in spec.component_rates
    ]


def start_open_loop(cluster: "Cluster") -> None:
    """Spawn the arrival streams, admission queues and service fibers.

    Called by ``Cluster.start()`` when the run has an open-loop arrival spec.
    Per partition: one bounded :class:`AdmissionQueue`, one arrival stream per
    rate (the aggregate stream, or one per ``component_rates`` entry), and
    ``concurrency_per_partition`` service fibers — the same execution width
    the closed loop would run, so saturation is comparable across modes.
    """
    from .cluster.worker import open_worker_loop  # cluster package import cycle

    spec = cluster.arrival
    config = cluster.config
    env = cluster.env
    handler = ARRIVAL_REGISTRY.get(spec.kind)
    params = spec.effective_params()
    n_partitions = config.n_partitions
    total_us = config.warmup_us + config.duration_us

    for partition_id, server in cluster.servers.items():
        queue = AdmissionQueue(env, config.admission_queue_depth)
        cluster.admission_queues[partition_id] = queue
        for label, source, rate_tps in _partition_streams(cluster, spec, partition_id):
            # Aggregate offered load splits evenly across partitions.
            interval_us = 1_000_000.0 * n_partitions / rate_tps
            rng = DeterministicRandom(derive_seed(
                config.seed,
                stable_hash(f"arrival:{spec.kind}:{label}") & 0xFFFF,
                partition_id,
            ))
            ctx = ArrivalContext(env, partition_id, label, interval_us,
                                 total_us, rng, source, params)
            env.process(
                _arrival_loop(cluster, queue, source, handler.gaps(ctx)),
                name=f"arrival-p{partition_id}-{label}",
            )
        for fiber_id in range(config.concurrency_per_partition):
            env.process(
                open_worker_loop(cluster, server, queue),
                name=f"service-p{partition_id}-{fiber_id}",
            )
