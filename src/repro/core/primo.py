"""Primo: write-conflict-free distributed concurrency control (WCF, §4).

The protocol distinguishes local and distributed transactions at runtime:

* a transaction starts in **local mode** and is processed with TicToc
  (:mod:`repro.core.tictoc`) — reads take no locks;
* on its first remote access it **switches to distributed mode**: the records
  it has already read are exclusive-locked and re-validated, and from then on
  every read (local or remote) acquires an exclusive lock (Algorithm 1);
* because the read-set covers the write-set (blind writes are turned into
  dummy reads), the commit phase can never encounter a conflict on any
  partition, so the coordinator simply computes the TicToc commit timestamp,
  installs local writes, and ships the remote write-sets with **one-way**
  messages — no prepare round, no votes, no commit round (Fig. 1).

Crash-induced aborts are not handled here at all: that is the job of the
watermark-based group commit (:mod:`repro.core.watermark`), which decides when
a transaction's result may be returned and which transactions get rolled back
after a failure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from ..commit.logging import LogRecordKind
from ..protocols.base import BaseProtocol, install_write_entries
from ..registry import register_protocol
from ..storage.lock import LockMode, LockPolicy
from ..txn.context import TxnContext
from ..txn.transaction import (
    AbortReason,
    ReadEntry,
    Transaction,
    TxnAborted,
    UserAbort,
    WriteEntry,
)
from .tictoc import TicTocLocalExecutor, compute_commit_ts

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server

__all__ = ["PrimoProtocol", "PrimoContext"]

LOCAL_MODE = "local"
DISTRIBUTED_MODE = "distributed"


class PrimoContext(TxnContext):
    """Execution-phase context implementing Algorithm 1 at the coordinator."""

    def __init__(self, protocol: "PrimoProtocol", server: "Server", txn: Transaction):
        super().__init__(protocol, server, txn)
        self.mode = LOCAL_MODE
        # (partition, table, key) -> Record for records held locally.
        self.records: dict = {}
        # The executor is stateless per attempt, so it is shared per server.
        self.tictoc = protocol.executor_for(server)
        # Partitions already contacted with a remote read; used to decide
        # whether a dummy read for a blind write can be piggybacked (§4.2).
        self.contacted_partitions: set[int] = set()
        # Hot-path hoists: one attribute read per operation instead of two
        # chained lookups (config) and a method resolution (timeout).
        self._access_cost = protocol.config.cpu_record_access_us
        self._timeout = server.env.timeout

    # -- reads -----------------------------------------------------------------
    def read(self, partition: int, table: str, key) -> Generator:
        """Flattened hot-path override of :meth:`TxnContext.read`.

        One generator frame per operation instead of three: the per-access
        CPU charge is a direct Timeout (no ``cpu()`` sub-generator), and the
        common local-mode TicToc read runs synchronously instead of through
        ``_protocol_read`` → ``_local_read`` delegation.  Event order and
        RNG consumption are identical to the generic path.
        """
        cost = self._access_cost
        if cost > 0:
            yield self._timeout(cost)
        txn = self.txn
        if partition == self.server.partition_id:
            existing = txn.find_read(partition, table, key)
            if existing is not None:
                value = dict(existing.value)
            elif self.mode == LOCAL_MODE:
                record, entry = self.tictoc.read(txn, table, key)
                if record is None:
                    raise TxnAborted(AbortReason.VALIDATION, f"missing record {table}:{key}")
                self.records[(partition, table, key)] = record
                value = entry.value
            else:
                value = yield from self._local_read(table, key)
        else:
            if self.mode == LOCAL_MODE:
                yield from self._switch_to_distributed()
            value = yield from self._remote_read(partition, table, key)
        cluster = self.server.cluster
        if cluster.stale_read_active:
            # Mirror of the stale_read hook in TxnContext.read — this override
            # bypasses the base class, so the fault check lives here too.
            cluster.note_read(partition)
        if not txn.write_set:
            return value
        return self._merge_own_writes(partition, table, key, value)

    def _protocol_read(self, partition: int, table: str, key) -> Generator:
        cost = self.protocol.config.cpu_record_access_us
        if cost > 0:
            yield self.env.timeout(cost)
        if self.is_local(partition):
            value = yield from self._local_read(table, key)
            return value
        if self.mode == LOCAL_MODE:
            yield from self._switch_to_distributed()
        value = yield from self._remote_read(partition, table, key)
        return value

    def _local_read(self, table: str, key) -> Generator:
        existing = self.txn.find_read(self.home_partition, table, key)
        if existing is not None:
            return dict(existing.value)
        if self.mode == LOCAL_MODE:
            record, entry = self.tictoc.read(self.txn, table, key)
            if record is None:
                raise TxnAborted(AbortReason.VALIDATION, f"missing record {table}:{key}")
            self.records[(self.home_partition, table, key)] = record
            return entry.value
        # Distributed mode: exclusive-lock the record before reading (Line 6).
        record = self.server.store.table(table).get(key)
        if record is None:
            raise TxnAborted(AbortReason.VALIDATION, f"missing record {table}:{key}")
        ok = self.server.store.lock_manager.acquire_nowait(
            self.txn.tid, record, LockMode.EXCLUSIVE
        )
        if type(ok) is not bool:
            ok = yield ok
        if not ok:
            raise TxnAborted(AbortReason.LOCK_CONFLICT, f"X-lock {table}:{key}")
        entry = ReadEntry(
            partition=self.home_partition,
            table=table,
            key=key,
            value=record.snapshot(),
            wts=record.wts,
            rts=record.rts,
            version=record.version,
            locked=True,
            local=True,
        )
        self.txn.add_read(entry)
        if self.txn.lower_bound_ts == 0.0:
            self.txn.lower_bound_ts = max(record.wts, self.server.ts_floor + 1)
        self.records[(self.home_partition, table, key)] = record
        return entry.value

    def _remote_read(self, partition: int, table: str, key, dummy: bool = False) -> Generator:
        existing = self.txn.find_read(partition, table, key)
        if existing is not None:
            return dict(existing.value)
        status, value, wts, rts = yield from self.protocol.remote_read(
            self.server, self.txn, partition, table, key
        )
        if status != "ok":
            raise TxnAborted(AbortReason.LOCK_CONFLICT, f"remote read {table}:{key}: {status}")
        entry = ReadEntry(
            partition=partition,
            table=table,
            key=key,
            value=value,
            wts=wts,
            rts=rts,
            locked=True,
            dummy=dummy,
            local=False,
        )
        self.txn.add_read(entry)
        self.contacted_partitions.add(partition)
        return value

    # -- the local -> distributed mode switch (§4.2.2) ---------------------------
    def _switch_to_distributed(self) -> Generator:
        lock_manager = self.server.store.lock_manager
        for entry in list(self.txn.read_set):
            if not entry.local or entry.locked:
                continue
            record = self.records.get((entry.partition, entry.table, entry.key))
            if record is None:
                continue
            ok = lock_manager.acquire_nowait(self.txn.tid, record, LockMode.EXCLUSIVE)
            if type(ok) is not bool:
                ok = yield ok
            if not ok:
                raise TxnAborted(AbortReason.MODE_SWITCH, "lock during mode switch")
            if record.wts != entry.wts:
                # The record changed while we read it without a lock: abort and
                # let the retry run directly in distributed mode.
                raise TxnAborted(AbortReason.MODE_SWITCH, "record changed before switch")
            entry.locked = True
        self.mode = DISTRIBUTED_MODE
        self.txn.is_distributed = True

    # -- writes --------------------------------------------------------------------
    def update(self, partition: int, table: str, key, updates: dict) -> Generator:
        """Flattened hot-path override of :meth:`TxnContext.update`.

        Mirrors ``_protocol_write`` for the plain-update case (never an
        insert) with one generator frame instead of two.
        """
        cost = self._access_cost
        if cost > 0:
            yield self._timeout(cost)
        txn = self.txn
        local = partition == self.server.partition_id
        if txn.find_read(partition, table, key) is None:
            # Blind write: add a dummy read to acquire the exclusive lock so
            # the commit phase stays conflict-free (§4.2).
            if local:
                if self.mode == DISTRIBUTED_MODE:
                    yield from self._local_read(table, key)
                # In local mode TicToc's write-set locking at validation covers it.
            else:
                if self.mode == LOCAL_MODE:
                    yield from self._switch_to_distributed()
                yield from self._remote_read(partition, table, key, dummy=True)
        elif not local and self.mode == LOCAL_MODE:
            yield from self._switch_to_distributed()
        txn.add_write(WriteEntry(
            partition=partition,
            table=table,
            key=key,
            updates=dict(updates),
            local=local,
        ))

    def _protocol_write(self, entry: WriteEntry) -> Generator:
        cost = self.protocol.config.cpu_record_access_us
        if cost > 0:
            yield self.env.timeout(cost)
        covered = self.txn.write_covered_by_read(entry.partition, entry.table, entry.key)
        if not covered and not entry.is_insert:
            # Blind write: add a dummy read to acquire the exclusive lock so the
            # commit phase stays conflict-free (§4.2 "Blind-write Handling").
            if self.is_local(entry.partition):
                if self.mode == DISTRIBUTED_MODE:
                    yield from self._local_read(entry.table, entry.key)
                # In local mode TicToc's write-set locking at validation covers it.
            else:
                if self.mode == LOCAL_MODE:
                    yield from self._switch_to_distributed()
                yield from self._remote_read(entry.partition, entry.table, entry.key, dummy=True)
        elif not self.is_local(entry.partition) and self.mode == LOCAL_MODE:
            yield from self._switch_to_distributed()
        self.txn.add_write(entry)


@register_protocol("primo", default_durability="wm",
                   description="WCF + TicToc + watermark group commit (this paper)")
class PrimoProtocol(BaseProtocol):
    """WCF + TicToc concurrency control (the commit path of Algorithm 1)."""

    name = "primo"
    lock_policy = LockPolicy.WAIT_DIE

    def __init__(self, cluster):
        super().__init__(cluster)
        self._fallback = None
        # partition id -> shared TicTocLocalExecutor (stateless between
        # attempts; sharing avoids one allocation per transaction attempt).
        self._executors: dict = {}
        if self.config.primo_fallback_to_2pc:
            from ..protocols.sundial import SundialProtocol

            self._fallback = SundialProtocol(cluster)

    def executor_for(self, server: "Server") -> TicTocLocalExecutor:
        executor = self._executors.get(server.partition_id)
        if executor is None:
            self._executors[server.partition_id] = executor = TicTocLocalExecutor(server)
        return executor

    # -- protocol interface --------------------------------------------------------
    def create_context(self, server: "Server", txn: Transaction) -> PrimoContext:
        return PrimoContext(self, server, txn)

    def run_transaction(self, server: "Server", txn: Transaction,
                        logic: Callable[[TxnContext], Generator]) -> Generator:
        if self._fallback is not None:
            # Read-heavy mostly-distributed fallback (§4.3): process every
            # transaction with the 2PC-based TicToc baseline instead of WCF.
            committed = yield from self._fallback.run_transaction(server, txn, logic)
            return committed
        # The commit timestamp is guaranteed to exceed the partition's current
        # timestamp floor (§5.1 R2), so that is a sound lower bound to register
        # for the watermark computation even before the first read happens.
        txn.lower_bound_ts = max(txn.lower_bound_ts, server.ts_floor + 1)
        server.active_txns.register(txn)
        try:
            context = yield from self._execute_logic(server, txn, logic)
            txn.execute_end_time = self.env._now
            yield from self._commit(server, txn, context)
            return True
        except UserAbort:
            self._cleanup_abort(server, txn)
            txn.abort_reason = AbortReason.USER
            return False
        except TxnAborted as aborted:
            self._cleanup_abort(server, txn)
            if txn.abort_reason is None:
                txn.abort_reason = aborted.reason
            return False
        finally:
            server.active_txns.deregister(txn)

    # -- commit phase -----------------------------------------------------------------
    def _commit(self, server: "Server", txn: Transaction, context: PrimoContext) -> Generator:
        commit_start = self.env._now
        if context.mode == LOCAL_MODE:
            yield from context.tictoc.validate_and_commit(txn, context.records)
            txn.add_breakdown("commit", self.env._now - commit_start)
            txn.commit_end_time = self.env._now
            return

        # Distributed mode (no validation needed, Lines 16-32 of Algorithm 1).
        ts_start = self.env._now
        commit_ts = compute_commit_ts(txn, server.ts_floor)
        txn.ts = commit_ts
        txn.add_breakdown("timestamp", self.env._now - ts_start)

        lock_manager = server.store.lock_manager
        # Extend the valid interval of local reads so commit_ts fits.
        for entry in txn.reads_for_partition(server.partition_id):
            record = context.records.get((entry.partition, entry.table, entry.key))
            if record is not None:
                record.extend_rts(commit_ts)
        # Install local writes and release local locks immediately.
        local_writes = txn.writes_for_partition(server.partition_id)
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(local_writes)))
        install_write_entries(server, txn, local_writes, commit_ts)
        lock_manager.release_all(txn.tid)
        server.note_ts(commit_ts)

        # Log the full write-set (including remote portions) at the
        # coordinator so recovery can re-deliver writes whose one-way commit
        # message was lost when a participant crashed (see
        # RecoveryCoordinator.redeliver_lost_writes).
        if txn.participants:
            server.log.append(
                LogRecordKind.COMMIT_DECISION,
                txn_ts=commit_ts,
                txn_tid=txn.tid,
                payload={
                    "participants": sorted(txn.participants),
                    "remote_writes": {
                        partition: [
                            (w.table, w.key, dict(w.updates), w.is_insert, w.is_delete)
                            for w in txn.writes_for_partition(partition)
                        ]
                        for partition in txn.participants
                    },
                },
            )

        # Ship the remote write-sets (plus the read keys whose rts must be
        # extended) with one-way messages; no acknowledgement is awaited.
        for partition in sorted(txn.participants):
            writes = txn.writes_for_partition(partition)
            read_keys = [
                (entry.table, entry.key) for entry in txn.reads_for_partition(partition)
            ]
            self.network.send(
                server.partition_id,
                partition,
                self._participant_commit,
                partition,
                txn,
                commit_ts,
                writes,
                read_keys,
            )
        txn.add_breakdown("commit", self.env._now - commit_start)
        txn.commit_end_time = self.env._now

    def _participant_commit(self, partition: int, txn: Transaction, commit_ts: float,
                            writes: list, read_keys: list) -> Generator:
        """Runs at a participant when the coordinator's write-set message arrives."""
        participant = self.server_of(partition)
        if participant.crashed:
            return
        yield from self.cpu(self.config.cpu_record_access_us * max(1, len(writes)))
        for table, key in read_keys:
            record = participant.store.table(table).get(key)
            if record is not None:
                record.extend_rts(commit_ts)
        install_write_entries(participant, txn, writes, commit_ts)
        participant.store.lock_manager.release_all(txn.tid)
        participant.active_txns.deregister(txn)
        participant.note_ts(commit_ts)

    # -- remote reads (participant side of the execution phase) ------------------------
    def remote_read(self, server: "Server", txn: Transaction, partition: int,
                    table: str, key) -> Generator:
        target = self.server_of(partition)

        def handler() -> Generator:
            if target.crashed:
                return ("crashed", None, 0.0, 0.0)
            record = target.store.table(table).get(key)
            if record is None:
                return ("missing", None, 0.0, 0.0)
            ok = target.store.lock_manager.acquire_nowait(
                txn.tid, record, LockMode.EXCLUSIVE
            )
            if type(ok) is not bool:
                ok = yield ok
            if not ok:
                return ("conflict", None, 0.0, 0.0)
            # Watermark requirement R2 (§5.1): make sure the final commit
            # timestamp will exceed this partition's published watermark.
            floor = target.ts_floor
            if record.wts <= floor:
                record.wts = floor + 1
                record.rts = max(record.rts, floor + 1)
            target.active_txns.register(txn, lower_bound=record.wts)
            return ("ok", record.snapshot(), record.wts, record.rts)

        result = yield from self.network.rpc(server.partition_id, partition, handler)
        return result

    # -- abort handling -------------------------------------------------------------------
    def _cleanup_abort(self, server: "Server", txn: Transaction) -> None:
        server.store.lock_manager.release_all(txn.tid)
        for partition in txn.participants:
            self.network.send(
                server.partition_id, partition, self._participant_abort, partition, txn
            )

    def _participant_abort(self, partition: int, txn: Transaction) -> None:
        participant = self.server_of(partition)
        participant.store.lock_manager.release_all(txn.tid)
        participant.active_txns.deregister(txn)
