"""TicToc optimistic concurrency control for *local* transactions.

Primo processes single-partition transactions with TicToc (§4.2): reads take
no locks and record the observed ``[wts, rts]`` interval; at commit the
write-set is locked, a commit timestamp is derived from the constraints

* ``ts >= wts`` of every record read,
* ``ts >  rts`` of every record written,

and the read-set is validated — a read is still valid if the commit timestamp
fits the record's (possibly extended) interval.  Extension of ``rts`` is what
makes the scheme robust to Primo's extra exclusive read locks: a lock held by
a distributed transaction only aborts a local transaction when the local
transaction *needs* to extend the record's ``rts`` (§4.2.1).

The same helper functions are reused by the Sundial baseline, which is the
distributed 2PC-based variant of TicToc.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..storage.lock import LockMode
from ..storage.record import Record
from ..storage.table import TableError
from ..txn.transaction import AbortReason, ReadEntry, Transaction, TxnAborted

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server

__all__ = ["compute_commit_ts", "TicTocLocalExecutor"]

_INSTALL_WRITE_ENTRIES = None


def _install_write_entries():
    """Resolve :func:`repro.protocols.base.install_write_entries` once.

    Importing ``protocols.base`` at module level would be circular (the
    protocols package imports the protocol modules, which import this one),
    and a per-commit ``from … import`` pays a ``sys.modules`` round trip on
    every transaction; resolving lazily into a module global does neither.
    """
    global _INSTALL_WRITE_ENTRIES
    if _INSTALL_WRITE_ENTRIES is None:
        from ..protocols.base import install_write_entries

        _INSTALL_WRITE_ENTRIES = install_write_entries
    return _INSTALL_WRITE_ENTRIES


def compute_commit_ts(txn: Transaction, ts_floor: float = 0.0) -> float:
    """Minimal logical timestamp satisfying TicToc's constraints (§4.2.1).

    ``ts_floor`` is the partition-watermark constraint of §5.1 (the commit
    timestamp must exceed the coordinator's current watermark so that the
    published watermark stays a lower bound for future transactions).
    """
    commit_ts = ts_floor + 1
    written = {(w.partition, w.table, w.key) for w in txn.write_set}
    for read in txn.read_set:
        commit_ts = max(commit_ts, read.wts)
        if (read.partition, read.table, read.key) in written:
            commit_ts = max(commit_ts, read.rts + 1)
    return commit_ts


class TicTocLocalExecutor:
    """Validation and installation for local (single-partition) transactions."""

    def __init__(self, server: "Server"):
        self.server = server
        self.env = server.env

    # -- execution phase -----------------------------------------------------
    def read(self, txn: Transaction, table: str, key) -> tuple[Optional[Record], Optional[ReadEntry]]:
        """Lock-free read; returns the record and the recorded read entry."""
        server = self.server
        table_obj = server.store.tables.get(table)
        if table_obj is None:
            raise TableError(
                f"table {table!r} does not exist on partition {server.partition_id}"
            )
        record = table_obj.get(key)
        if record is None:
            return None, None
        entry = ReadEntry(
            partition=server.partition_id,
            table=table,
            key=key,
            value=dict(record.value),
            wts=record.wts,
            rts=record.rts,
            version=record.version,
            locked=False,
            local=True,
        )
        txn.add_read(entry)
        if txn.lower_bound_ts == 0.0:
            txn.lower_bound_ts = max(record.wts, server.ts_floor + 1)
        return record, entry

    # -- commit phase ----------------------------------------------------------
    def validate_and_commit(self, txn: Transaction, records: dict) -> Generator:
        """Lock the write-set, validate the read-set, install writes, unlock.

        ``records`` maps ``(partition, table, key)`` to the :class:`Record`
        objects observed during execution.  Returns the commit timestamp, or
        raises :class:`TxnAborted` (after releasing any locks it took).
        """
        # Lazily bound once (not per commit): protocols.base imports this
        # module's helpers, so a top-level import would be circular.
        install_write_entries = _install_write_entries()
        lock_manager = self.server.store.lock_manager
        locked: list[Record] = []
        try:
            # (1) Lock the write-set in a deterministic order (WAIT_DIE keeps
            # this deadlock-free even against Primo's distributed transactions).
            for entry in sorted(txn.write_set, key=lambda w: (w.table, str(w.key))):
                record = records.get((entry.partition, entry.table, entry.key))
                if record is None:
                    record = self.server.store.table(entry.table).get(entry.key)
                    if record is None and entry.is_insert:
                        continue
                if record is None:
                    raise TxnAborted(AbortReason.VALIDATION, "write target vanished")
                ok = lock_manager.acquire_nowait(txn.tid, record, LockMode.EXCLUSIVE)
                if type(ok) is not bool:
                    ok = yield ok
                if not ok:
                    raise TxnAborted(AbortReason.LOCK_CONFLICT, "write lock")
                locked.append(record)

            # (2) Compute the commit timestamp (compute_commit_ts inlined so
            # the ``written`` key set is built once and shared with step 3).
            written = {(w.partition, w.table, w.key) for w in txn.write_set}
            commit_ts = self.server.ts_floor + 1
            for read in txn.read_set:
                if read.wts > commit_ts:
                    commit_ts = read.wts
                if (read.partition, read.table, read.key) in written:
                    bound = read.rts + 1
                    if bound > commit_ts:
                        commit_ts = bound
            txn.ts = commit_ts

            # (3) Validate the read-set.
            for read in txn.read_set:
                key3 = (read.partition, read.table, read.key)
                record = records.get(key3)
                if record is None:
                    continue
                if record.wts != read.wts:
                    raise TxnAborted(AbortReason.VALIDATION, "read version changed")
                if key3 in written:
                    continue  # already exclusively locked above, rts extension trivial
                if commit_ts <= record.rts:
                    continue  # still inside the valid interval, nothing to do
                holders = lock_manager.holders_of(record)
                if any(holder != txn.tid for holder in holders):
                    # Another transaction holds the record exclusively and we
                    # need to extend rts: this is the (rare) abort Primo's
                    # extra read locks can cause (§4.2.1).
                    raise TxnAborted(AbortReason.VALIDATION, "rts extension blocked")
                record.extend_rts(commit_ts)

            # (4) Install writes and release.
            install_write_entries(self.server, txn, txn.write_set, commit_ts)
            self.server.note_ts(commit_ts)
            return commit_ts
        finally:
            for record in locked:
                lock_manager.release(txn.tid, record)
