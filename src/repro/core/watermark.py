"""Watermark-based asynchronous distributed group commit (WM, §5).

Every partition leader runs an independent loop each ``epoch_length_us``
(the paper's interval ``t_m``):

1. flush its log (quorum replication), so everything executed so far on the
   partition is durable;
2. compute its partition watermark ``Wp`` — the minimum logical timestamp
   (or lower bound ``lts``) of its active transactions, kept monotone
   (Rule 1 / requirements R1 & R2 of §5.1);
3. persist a watermark log record and broadcast ``Wp`` to the other
   partitions with one-way messages (no synchronisation).

Each partition keeps a table of the last watermark heard from every other
partition; the minimum of that table is the global watermark ``Wg``, and every
executed transaction with ``ts < Wg`` is acknowledged to its client.

Force update (§5.1 "lagging partitions"): when a partition's watermark falls
behind the average of the others, it raises the *timestamp floor* used for new
transactions (and, when idle, its own watermark) by the difference, so a slow
or idle partition cannot indefinitely hold back the global watermark.

On a crash, the recovery coordinator (``repro.cluster.recovery``) agrees on a
global watermark via the membership service; transactions with ``ts`` at or
above the agreed value are rolled back (crash-induced aborts), everything
below is durable — this scheme exposes :meth:`resolve_after_crash` for that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..commit.base import CRASH_ABORTED, DURABLE, DurabilityScheme
from ..commit.logging import LogRecordKind
from ..registry import register_durability
from ..sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.server import Server
    from ..txn.transaction import Transaction

__all__ = ["WatermarkGroupCommit"]


class _PartitionWatermarkState:
    """Per-partition WM bookkeeping."""

    def __init__(self, n_partitions: int, partition_id: int):
        self.partition_id = partition_id
        self.wp = 0.0
        # Last watermark heard from every partition (including ourselves).
        self.table = {p: 0.0 for p in range(n_partitions)}
        self.wg = 0.0
        # Executed transactions waiting for the global watermark: (ts, txn, event).
        self.pending: list = []


@register_durability("wm", description="Primo's watermark-based asynchronous group commit")
class WatermarkGroupCommit(DurabilityScheme):
    name = "wm"

    def __init__(self, cluster):
        super().__init__(cluster)
        self._states = {
            p: _PartitionWatermarkState(self.config.n_partitions, p)
            for p in range(self.config.n_partitions)
        }
        self._crashed: set[int] = set()
        self._message_delay_us: dict[int, float] = {}
        self.stats = {"watermarks_published": 0, "force_updates": 0}

    def set_message_delay(self, partition_id: int, delay_us: float) -> None:
        self._message_delay_us[partition_id] = float(delay_us)

    # -- worker-facing API ---------------------------------------------------------
    def start(self) -> None:
        for partition_id in range(self.config.n_partitions):
            self.env.process(
                self._watermark_loop(partition_id), name=f"wm-loop-p{partition_id}"
            )

    def transaction_executed(self, server: "Server", txn: "Transaction") -> Event:
        done = self.env.event()
        state = self._states[server.partition_id]
        ts = txn.effective_ts()
        if ts < state.wg:
            # Already below the global watermark (can happen for read-only or
            # very fast transactions): durable immediately.
            done.succeed(DURABLE)
            return done
        state.pending.append((ts, txn, done))
        return done

    # -- the per-partition loop -------------------------------------------------------
    def _watermark_loop(self, partition_id: int):
        server = self.cluster.servers[partition_id]
        state = self._states[partition_id]
        while True:
            yield self.env.timeout(self.config.epoch_length_us)
            if server.crashed or partition_id in self._crashed:
                continue
            # (1) make everything executed so far durable on this partition.
            if server.log.unpersisted_count > 0:
                yield from server.log.flush()
            # (2) compute the new partition watermark.
            new_wp = self._compute_wp(server, state)
            if new_wp > state.wp:
                state.wp = new_wp
            server.partition_watermark = state.wp
            # Advance the timestamp floor to the partition's logical-time
            # frontier: every transaction that starts from now on commits with
            # ts above everything already installed here, so the *next*
            # interval's watermark covers everything committed during this one
            # and the acknowledgement delay stays at interval scale.  (This is
            # a strengthening of the paper's "ts > Wp" constraint — raising a
            # TicToc commit timestamp is always legal — documented in
            # DESIGN.md.)
            server.ts_floor = max(server.ts_floor, state.wp, server.highest_ts_seen)
            # Force update for lagging/idle partitions.
            if self.config.watermark_force_update:
                self._force_update(server, state)
            # (3) persist and broadcast.
            server.log.append(LogRecordKind.WATERMARK, payload={"watermark": state.wp})
            self.stats["watermarks_published"] += 1
            self._receive_watermark(partition_id, partition_id, state.wp)
            delay = self._message_delay_us.get(partition_id, 0.0)
            for other in range(self.config.n_partitions):
                if other == partition_id:
                    continue
                self.env.process(
                    self._broadcast(partition_id, other, state.wp, delay),
                    name=f"wm-broadcast-p{partition_id}",
                )

    def _broadcast(self, source: int, destination: int, wp: float, delay_us: float):
        """Send one watermark message, optionally lagged (Fig. 13a injection)."""
        if delay_us > 0:
            yield self.env.timeout(delay_us)
        else:
            yield self.env.timeout(0.0)
        self.cluster.network.send(
            source, destination, self._receive_watermark, destination, source, wp
        )

    def _compute_wp(self, server: "Server", state: _PartitionWatermarkState) -> float:
        candidates = []
        active_min = server.active_txns.min_effective_ts()
        if active_min is not None:
            candidates.append(active_min)
        unpersisted_min = server.log.unpersisted_min_ts()
        if unpersisted_min is not None:
            candidates.append(unpersisted_min)
        if candidates:
            return max(state.wp, min(candidates))
        # Idle partition: everything it has seen is durable, so the watermark
        # may advance to just past the highest timestamp it assigned/installed.
        return max(state.wp, server.highest_ts_seen + 1)

    def _force_update(self, server: "Server", state: _PartitionWatermarkState) -> None:
        others = [
            w for p, w in state.table.items() if p != state.partition_id
        ]
        if not others:
            return
        average = sum(others) / len(others)
        if state.wp >= average:
            return
        delta = average - state.wp
        self.stats["force_updates"] += 1
        # Future transactions on this partition must pick timestamps above the
        # average so the next watermark can catch up (R2 + Δ, §5.1).
        server.ts_floor = max(server.ts_floor, state.wp + delta)
        if server.active_txns.is_empty() and server.log.unpersisted_count == 0:
            state.wp = state.wp + delta
            server.partition_watermark = state.wp

    # -- watermark propagation ------------------------------------------------------------
    def _receive_watermark(self, at_partition: int, from_partition: int, wp: float) -> None:
        state = self._states[at_partition]
        if wp > state.table.get(from_partition, 0.0):
            state.table[from_partition] = wp
        new_wg = min(state.table.values())
        if new_wg > state.wg:
            state.wg = new_wg
            self._release_pending(state)

    def _release_pending(self, state: _PartitionWatermarkState) -> None:
        # Wake every released transaction's completion callback through one
        # shared fast-lane notify instead of one scheduled event each: a
        # watermark advance typically acknowledges a whole interval's worth
        # of transactions at once.
        released = []
        still_pending = []
        wg = state.wg
        for pending in state.pending:
            if pending[2].triggered:
                continue
            if pending[0] < wg:
                released.append(pending[2])
            else:
                still_pending.append(pending)
        state.pending = still_pending
        if released:
            self.env.succeed_all(released, DURABLE)

    # -- failure handling -------------------------------------------------------------------
    def notify_crash(self, partition_id: int) -> None:
        self._crashed.add(partition_id)

    def notify_recovered(self, partition_id: int) -> None:
        self._crashed.discard(partition_id)

    def latest_partition_watermark(self, partition_id: int) -> float:
        return self._states[partition_id].wp

    def resolve_after_crash(self, agreed_wg: float) -> dict[str, int]:
        """Apply the recovery decision: ack below ``agreed_wg``, abort the rest.

        Returns counts used by the crash-abort-rate experiment (Fig. 12b).
        """
        stats = {"durable": 0, "crash_aborted": 0}
        for state in self._states.values():
            state.wg = max(state.wg, agreed_wg)
            for p in state.table:
                state.table[p] = max(state.table[p], agreed_wg)
            remaining = []
            for ts, txn, event in state.pending:
                if event.triggered:
                    continue
                if ts < agreed_wg:
                    event.succeed(DURABLE)
                    stats["durable"] += 1
                else:
                    event.succeed(CRASH_ABORTED)
                    stats["crash_aborted"] += 1
            state.pending = remaining
        return stats
