"""Primo's core contribution: WCF concurrency control, TicToc local execution,
the watermark-based group commit and the Appendix A analytical model."""

from .analysis import AnalysisParameters, ConflictRateModel
from .primo import PrimoContext, PrimoProtocol
from .tictoc import TicTocLocalExecutor, compute_commit_ts
from .watermark import WatermarkGroupCommit

__all__ = [
    "AnalysisParameters",
    "ConflictRateModel",
    "PrimoContext",
    "PrimoProtocol",
    "TicTocLocalExecutor",
    "compute_commit_ts",
    "WatermarkGroupCommit",
]
