"""Theoretical conflict-rate model of Appendix A.

Implements equations (1)–(6): the probability that a representative local
transaction conflicts with a concurrent transaction under a 2PC-based scheme
versus under Primo, and the resulting conflict rates given the workload and
cluster parameters.  The benchmark ``bench_appendix_analysis`` sweeps the read
ratio and contention exactly as the appendix discusses (Primo wins for
``R_r < 0.8`` with the conservative ``R_u = 0.6``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AnalysisParameters", "ConflictRateModel"]


@dataclass
class AnalysisParameters:
    """Workload/cluster parameters of Appendix A."""

    n_partitions: int = 4            # n
    threads_per_server: int = 16     # h
    keys_per_transaction: int = 10   # m
    read_ratio: float = 0.5          # R_r
    distributed_ratio: float = 0.2   # R_d
    contention: float = 1e-5         # P_c: P(two ops touch the same record)
    rts_update_ratio: float = 0.6    # R_u (conservative max observed)
    local_txn_duration_us: float = 20.0    # t_l
    remote_access_duration_us: float = 100.0  # t_r
    concurrent_local_txns: float = 32.0       # N_l

    def validate(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be in [0, 1]")
        if not 0.0 <= self.distributed_ratio <= 1.0:
            raise ValueError("distributed_ratio must be in [0, 1]")
        if not 0.0 <= self.rts_update_ratio <= 1.0:
            raise ValueError("rts_update_ratio must be in [0, 1]")
        if not 0.0 <= self.contention <= 1.0:
            raise ValueError("contention must be a probability")


class ConflictRateModel:
    """Closed-form conflict rates CR_2PC and CR_Primo (equations 1–6)."""

    def __init__(self, params: AnalysisParameters):
        params.validate()
        self.params = params

    # -- probability that T_l conflicts with one given concurrent transaction ---
    def conflict_with_one_2pc(self) -> float:
        """Equation (1)."""
        p = self.params
        exponent = p.keys_per_transaction ** 2 * (1.0 - p.read_ratio ** 2)
        return 1.0 - (1.0 - p.contention) ** exponent

    def conflict_with_one_primo_local(self) -> float:
        """C_Primo_l = C_2PC (local transactions behave identically)."""
        return self.conflict_with_one_2pc()

    def conflict_with_one_primo_distributed(self) -> float:
        """Equation (2)."""
        p = self.params
        exponent = p.keys_per_transaction ** 2 * (
            1.0 - p.read_ratio ** 2 + p.read_ratio ** 2 * p.rts_update_ratio
        )
        return 1.0 - (1.0 - p.contention) ** exponent

    # -- number of concurrent distributed transactions ---------------------------
    def concurrent_distributed_2pc(self) -> float:
        """Equation (3)."""
        p = self.params
        return (
            p.distributed_ratio
            * p.n_partitions
            * p.threads_per_server
            * (2.0 + 2.0 * p.remote_access_duration_us / p.local_txn_duration_us)
        )

    def concurrent_distributed_primo(self) -> float:
        """Equation (4)."""
        p = self.params
        return (
            p.distributed_ratio
            * p.n_partitions
            * p.threads_per_server
            * (2.0 + p.remote_access_duration_us / p.local_txn_duration_us)
        )

    # -- conflict rate of the representative local transaction ---------------------
    def conflict_rate_2pc(self) -> float:
        """Equation (5)."""
        p = self.params
        c_one = self.conflict_with_one_2pc()
        n_distributed = self.concurrent_distributed_2pc()
        no_conflict = (1.0 - c_one) ** (n_distributed + p.concurrent_local_txns)
        return 1.0 - no_conflict

    def conflict_rate_primo(self) -> float:
        """Equation (6)."""
        p = self.params
        c_local = self.conflict_with_one_primo_local()
        c_distributed = self.conflict_with_one_primo_distributed()
        n_distributed = self.concurrent_distributed_primo()
        no_conflict = ((1.0 - c_distributed) ** n_distributed) * (
            (1.0 - c_local) ** p.concurrent_local_txns
        )
        return 1.0 - no_conflict

    def improvement_ratio(self) -> float:
        """CR_2PC / CR_Primo — above 1.0 means Primo conflicts less."""
        primo = self.conflict_rate_primo()
        two_pc = self.conflict_rate_2pc()
        if primo == 0.0:
            return float("inf") if two_pc > 0 else 1.0
        return two_pc / primo

    def primo_wins(self) -> bool:
        """Does the model predict fewer conflicts under Primo?"""
        return self.conflict_rate_primo() <= self.conflict_rate_2pc()

    # -- sweeps used by the appendix bench -------------------------------------------
    @staticmethod
    def sweep_read_ratio(base: AnalysisParameters, read_ratios) -> list[dict]:
        rows = []
        for read_ratio in read_ratios:
            params = AnalysisParameters(**{**base.__dict__, "read_ratio": read_ratio})
            model = ConflictRateModel(params)
            rows.append(
                {
                    "read_ratio": read_ratio,
                    "cr_2pc": model.conflict_rate_2pc(),
                    "cr_primo": model.conflict_rate_primo(),
                    "primo_wins": model.primo_wins(),
                }
            )
        return rows
