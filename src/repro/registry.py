"""First-class registries: the extension points of the package.

Every pluggable axis of the evaluation grid — concurrency-control
*protocols*, *durability* (group-commit) schemes, *workloads*, and the
benchmark *figures* built from them — is registered here under a short
string name.  Built-in implementations register themselves with the
decorators below; external code can do exactly the same from any module,
and the new name immediately shows up everywhere names are consumed:
``SystemConfig`` validation, :class:`repro.scenario.ScenarioSpec`,
``python -m repro.bench --list``, and the orchestrator's figure sweeps.

Example — a new protocol in one file, no core edits::

    from repro.registry import register_protocol
    from repro.protocols import SiloProtocol

    @register_protocol("silo_patched", default_durability="coco")
    class PatchedSilo(SiloProtocol):
        ...

Lookups are strict: an unknown name raises :class:`UnknownNameError`
(a ``ValueError``) listing the registered choices plus a did-you-mean
suggestion, so a typo'd name fails loudly at *plan* time instead of
mid-sweep inside a worker process.

Built-in implementations live in modules that are only imported on first
use (``ensure_modules``), which keeps this module import-cycle-free:
it depends on nothing but the standard library.

Registrations are per-process.  The orchestrator's process pool
(``run_cells(jobs=N)``) re-imports ``repro`` in each worker, which registers
the built-ins but not your module — on fork-based platforms (Linux default)
workers inherit the parent's registrations, but under the ``spawn``/
``forkserver`` start methods an externally registered name would miss inside
a worker.  Run externally registered scenarios with ``jobs=1``, or make sure
the registering module is imported by the workers (e.g. register inside an
installed package that ``repro`` extensions import).
"""

from __future__ import annotations

import difflib
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Optional, Sequence

__all__ = [
    "ARRIVAL_REGISTRY",
    "DURABILITY_REGISTRY",
    "FAULT_REGISTRY",
    "FIGURE_REGISTRY",
    "PROTOCOL_REGISTRY",
    "SCALE_REGISTRY",
    "WORKLOAD_REGISTRY",
    "DuplicateNameError",
    "Registry",
    "RegistryEntry",
    "RegistryMapping",
    "RegistryNames",
    "UnknownNameError",
    "register_arrival",
    "register_durability",
    "register_fault",
    "register_figure",
    "register_protocol",
    "register_scale",
    "register_workload",
    "suggestion_hint",
]


class UnknownNameError(ValueError):
    """An unregistered name was looked up (carries a did-you-mean hint).

    Instances raised through :func:`unknown_name_error` carry structured
    attributes alongside the rendered message — ``kind`` (what sort of name
    was looked up), ``name`` (what was asked for) and ``choices`` (what was
    registered) — so layered validators (campaign specs wrapping scenario
    errors with factor context) can re-render without parsing the string.
    """

    kind: str = ""
    name: str = ""
    choices: tuple = ()


class DuplicateNameError(ValueError):
    """A name was registered twice without ``replace=True``."""


def suggestion_hint(name: str, choices: Sequence[str]) -> str:
    """``" (did you mean 'x'?)"`` when ``name`` is close to a choice, else ``""``."""
    matches = difflib.get_close_matches(name, list(choices), n=2, cutoff=0.5)
    if not matches:
        return ""
    if len(matches) == 1:
        return f" (did you mean {matches[0]!r}?)"
    return f" (did you mean {matches[0]!r} or {matches[1]!r}?)"


def unknown_name_error(kind: str, name: Any, choices: Sequence[str]) -> UnknownNameError:
    """The single error used for every unknown protocol/durability/workload/figure."""
    listing = ", ".join(repr(c) for c in choices) or "<nothing registered>"
    hint = suggestion_hint(str(name), choices)
    error = UnknownNameError(f"unknown {kind} {name!r}{hint}; registered: {listing}")
    error.kind = kind
    error.name = str(name)
    error.choices = tuple(choices)
    return error


@dataclass(frozen=True)
class RegistryEntry:
    """One registered implementation plus its registration metadata."""

    name: str
    obj: Any
    metadata: dict = field(default_factory=dict)


class Registry:
    """A name -> implementation table with strict, suggestion-bearing lookups.

    ``ensure_modules`` are imported (once, lazily) before the first lookup or
    listing so the built-in implementations — which register themselves at
    import time via the decorators below — are always visible without this
    module importing any of them eagerly.
    """

    def __init__(self, kind: str, ensure_modules: Sequence[str] = ()) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}
        self._ensure_modules = tuple(ensure_modules)
        self._ensured = not self._ensure_modules

    def _ensure(self) -> None:
        if not self._ensured:
            # Flip the flag first: the modules being imported call back into
            # register(), and a second _ensure() there must be a no-op.
            self._ensured = True
            for module in self._ensure_modules:
                importlib.import_module(module)

    # -- registration -----------------------------------------------------------
    def register(self, name: str, obj: Any = None, *, replace: bool = False,
                 **metadata) -> Any:
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        Metadata keywords are kept on the :class:`RegistryEntry` for consumers
        (e.g. a protocol's ``default_durability``, a workload's ``config_cls``).
        """
        if obj is None:
            def decorator(target: Any) -> Any:
                self.register(name, target, replace=replace, **metadata)
                return target
            return decorator
        if not replace and name in self._entries:
            raise DuplicateNameError(
                f"{self.kind} {name!r} is already registered "
                f"({self._entries[name].obj!r}); pass replace=True to override"
            )
        self._entries[name] = RegistryEntry(name=name, obj=obj, metadata=dict(metadata))
        return obj

    def unregister(self, name: str) -> RegistryEntry:
        """Remove and return an entry (primarily for tests of extensions)."""
        self._ensure()
        if name not in self._entries:
            raise unknown_name_error(self.kind, name, self.names())
        return self._entries.pop(name)

    # -- lookup -----------------------------------------------------------------
    def entry(self, name: str) -> RegistryEntry:
        self._ensure()
        try:
            return self._entries[name]
        except KeyError:
            raise unknown_name_error(self.kind, name, self.names()) from None

    def get(self, name: str) -> Any:
        return self.entry(name).obj

    def check(self, name: str) -> str:
        """Validate that ``name`` is registered (returns it for chaining)."""
        self.entry(name)
        return name

    def names(self) -> tuple[str, ...]:
        self._ensure()
        return tuple(sorted(self._entries))

    def entries(self) -> tuple[RegistryEntry, ...]:
        self._ensure()
        return tuple(self._entries[name] for name in self.names())

    def __contains__(self, name: object) -> bool:
        self._ensure()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure()
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {list(self.names())})"

    # -- derived views ----------------------------------------------------------
    def names_view(self) -> "RegistryNames":
        return RegistryNames(self)

    def as_mapping(self) -> "RegistryMapping":
        return RegistryMapping(self)


class RegistryNames(Sequence):
    """A live, tuple-like view of a registry's names.

    ``PROTOCOLS`` and ``DURABILITY_SCHEMES`` are instances: every historical
    call site (``name in PROTOCOLS``, iteration, indexing, ``len``) keeps
    working, but the contents track the registry — including names registered
    by external code after import.
    """

    def __init__(self, registry: Registry) -> None:
        self._registry = registry

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __getitem__(self, index):
        return self._registry.names()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (tuple, list, RegistryNames)):
            return tuple(self) == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._registry.names()))

    def __repr__(self) -> str:
        return repr(self._registry.names())


class RegistryMapping(Mapping):
    """A live, dict-like ``name -> implementation`` view of a registry.

    ``FIGURES`` is an instance; ``FIGURES[name]`` raises the registry's
    suggestion-bearing :class:`UnknownNameError` instead of a bare KeyError.
    """

    def __init__(self, registry: Registry) -> None:
        self._registry = registry

    def __getitem__(self, name: str) -> Any:
        return self._registry.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __contains__(self, name: object) -> bool:
        return name in self._registry

    def __repr__(self) -> str:
        return f"{{{', '.join(f'{n!r}: ...' for n in self._registry.names())}}}"


# ---------------------------------------------------------------------------
# The four registries
# ---------------------------------------------------------------------------

#: Concurrency-control protocols.  Entry: the protocol class (``cls(cluster)``);
#: metadata: ``default_durability`` — the paper's §6.1.3 pairing used by
#: ``SystemConfig.for_protocol`` — and ``description``.
PROTOCOL_REGISTRY = Registry(
    "protocol", ensure_modules=("repro.core.primo", "repro.protocols")
)

#: Durability / group-commit schemes.  Entry: the scheme class (``cls(cluster)``).
DURABILITY_REGISTRY = Registry(
    "durability scheme", ensure_modules=("repro.commit", "repro.core.watermark")
)

#: OLTP workloads.  Entry: the Workload class; metadata: ``config_cls`` (its
#: config dataclass — override keys are validated against its fields) and
#: ``scale_defaults`` (config field -> BenchScale attribute supplying the
#: population sizing for that scale).
WORKLOAD_REGISTRY = Registry("workload", ensure_modules=("repro.workloads",))

#: Benchmark figures.  Entry: a FigureSpec (``plan``/``render`` pair).
FIGURE_REGISTRY = Registry("figure", ensure_modules=("repro.bench.experiments",))

#: Fault-injection event types usable in a :class:`repro.faults.FaultPlan`.
#: Entry: the fault-type class (``apply``/``revert`` staticmethods); metadata:
#: ``params`` (required parameter names), ``windowed`` (whether a
#: ``duration_us`` window is allowed) and ``requires_membership`` (whether the
#: cluster must run its failure detector for this fault to resolve).
FAULT_REGISTRY = Registry("fault type", ensure_modules=("repro.faults",))

#: Run-size presets accepted by ``ScenarioSpec.scale`` and ``--scale``.
#: Entry: the BenchScale instance itself.
SCALE_REGISTRY = Registry("scale", ensure_modules=("repro.scales",))

#: Arrival processes (traffic shapes) usable as ``ScenarioSpec.arrival``.
#: Entry: the arrival-process class (a ``gaps(ctx)`` staticmethod generator —
#: see :mod:`repro.arrivals`); metadata: ``params`` (optional parameter name
#: -> default), ``open_loop`` (``False`` only for the built-in closed loop)
#: and ``description``.
ARRIVAL_REGISTRY = Registry("arrival process", ensure_modules=("repro.arrivals",))


def register_protocol(name: str, *, default_durability: str = "coco",
                      description: str = "", replace: bool = False) -> Callable:
    """Class decorator registering a concurrency-control protocol."""
    return PROTOCOL_REGISTRY.register(
        name, replace=replace,
        default_durability=default_durability, description=description,
    )


def register_durability(name: str, *, description: str = "",
                        replace: bool = False) -> Callable:
    """Class decorator registering a durability / group-commit scheme."""
    return DURABILITY_REGISTRY.register(name, replace=replace, description=description)


def register_workload(name: str, *, config_cls: type,
                      scale_defaults: Optional[Mapping[str, str]] = None,
                      description: str = "", replace: bool = False) -> Callable:
    """Class decorator registering a workload plus its config dataclass.

    ``scale_defaults`` maps config-field names to ``BenchScale`` attribute
    names; ``repro.scenario.build_workload`` seeds the config with those
    per-scale values before applying explicit overrides.
    """
    return WORKLOAD_REGISTRY.register(
        name, replace=replace,
        config_cls=config_cls,
        scale_defaults=dict(scale_defaults or {}),
        description=description,
    )


def register_figure(name: str, *, description: str = "",
                    replace: bool = False) -> Callable:
    """Decorator (or direct call via ``FIGURE_REGISTRY.register``) for figures."""
    return FIGURE_REGISTRY.register(name, replace=replace, description=description)


#: FaultEvent field names a fault type's parameters must not collide with
#: (event JSON documents flatten parameters next to these).
_FAULT_RESERVED_FIELDS = frozenset({"kind", "at_us", "duration_us", "target"})


def register_fault(name: str, *, params: Sequence[str] = (),
                   windowed: bool = True, requires_membership: bool = False,
                   description: str = "", replace: bool = False) -> Callable:
    """Class decorator registering a fault-injection event type.

    The class must expose ``apply(cluster, partition_id, params)`` and — when
    ``windowed`` — ``revert(cluster, partition_id, params)`` staticmethods.
    ``params`` names the required parameters of the fault (e.g. ``delay_us``);
    they are validated eagerly when a :class:`repro.faults.FaultEvent` is
    constructed.  ``requires_membership`` marks fault types (crashes) whose
    resolution relies on the cluster's heartbeat-based failure detector.
    """
    collisions = _FAULT_RESERVED_FIELDS.intersection(params)
    if collisions:
        raise ValueError(
            f"fault type {name!r} declares reserved parameter name(s) "
            f"{', '.join(sorted(map(repr, collisions)))}"
        )
    return FAULT_REGISTRY.register(
        name, replace=replace,
        params=tuple(params), windowed=bool(windowed),
        requires_membership=bool(requires_membership), description=description,
    )


#: ArrivalSpec field names an arrival kind's parameters must not collide with
#: (spec JSON documents flatten parameters next to these).
_ARRIVAL_RESERVED_FIELDS = frozenset({"kind", "rate_tps", "component_rates"})


def register_arrival(name: str, *, params: Optional[Mapping[str, Any]] = None,
                     open_loop: bool = True, description: str = "",
                     replace: bool = False) -> Callable:
    """Class decorator registering an arrival process (traffic shape).

    The class must expose a ``gaps(ctx)`` staticmethod: a generator yielding
    inter-arrival gaps in simulated microseconds for one arrival stream (the
    ``ctx`` is an :class:`repro.arrivals.ArrivalContext`).  It may also expose
    ``check_params(params)`` to validate parameter *values* eagerly.
    ``params`` maps the kind's optional parameters to their defaults; an
    :class:`repro.arrivals.ArrivalSpec` naming this kind validates its
    parameters against them at construction, with did-you-mean hints.
    """
    params = dict(params or {})
    collisions = _ARRIVAL_RESERVED_FIELDS.intersection(params)
    if collisions:
        raise ValueError(
            f"arrival process {name!r} declares reserved parameter name(s) "
            f"{', '.join(sorted(map(repr, collisions)))}"
        )
    return ARRIVAL_REGISTRY.register(
        name, replace=replace,
        params=params, open_loop=bool(open_loop), description=description,
    )


def register_scale(scale: Any = None, *, replace: bool = False, description: str = ""):
    """Register a :class:`repro.scales.BenchScale` preset under its own name.

    Usable as a plain call (``register_scale(BenchScale(...))``) or as a
    decorator on a zero-argument factory function whose result is registered::

        @register_scale
        def huge():
            return BenchScale(name="huge", ...)

    The new name is immediately accepted by ``ScenarioSpec.scale``,
    ``repro.scales.resolve_scale`` and ``python -m repro.bench --scale``.
    """
    if scale is None:
        def decorator(target):
            register_scale(target, replace=replace, description=description)
            return target
        return decorator
    if callable(scale) and not hasattr(scale, "name"):
        produced = scale()
        register_scale(produced, replace=replace, description=description)
        return scale
    SCALE_REGISTRY.register(scale.name, scale, replace=replace,
                            description=description)
    return scale
